//! The `churn` experiment scenario: recall and traffic under dynamics.
//!
//! The paper's evaluation is static — subscriptions only arrive, sensors
//! only appear. This scenario replays a seeded [`ChurnPlan`] (subscribe,
//! unsubscribe, sensor up/down, interleaved readings, full teardown at the
//! end) through the four distributed engines and measures:
//!
//! * subscription / event load, as in the static figures;
//! * **recall under churn**: delivered result units relative to the exact
//!   naive baseline (the deterministic engines must stay at 1.0; the
//!   probabilistic Filter-Split-Forward filter may dip, exactly like the
//!   static Fig. 12);
//! * **teardown cleanliness**: whether the full retraction suffix returned
//!   every node to its post-bootstrap empty state.

use fsf_dynamics::{leaks, run_plan, ChurnPlan, ChurnPlanConfig};
use fsf_engines::EngineKind;
use fsf_network::builders;

/// Parameters of the churn experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Scenario name (reports).
    pub name: String,
    /// Network size: a balanced binary tree of this many nodes.
    pub total_nodes: usize,
    /// The plan generator's parameters.
    pub plan: ChurnPlanConfig,
    /// Event-store validity horizon for the engines (must exceed the
    /// plan's `δt`).
    pub event_validity: u64,
    /// Engine seed (feeds the probabilistic set filter).
    pub engine_seed: u64,
}

impl ChurnConfig {
    /// The default churn setting: a 127-node balanced tree, 60 churn
    /// actions over 12 bootstrap sensors, four readings between actions.
    #[must_use]
    pub fn paper_scale() -> Self {
        let plan = ChurnPlanConfig {
            seed: 0x0DD5_EED5,
            initial_sensors: 12,
            churn_actions: 60,
            events_per_action: 4,
            ..ChurnPlanConfig::default()
        };
        ChurnConfig {
            name: "churn".into(),
            total_nodes: 127,
            event_validity: 2 * plan.delta_t,
            engine_seed: 42,
            plan,
        }
    }

    /// Scale down the churn volume (quick CI/bench runs), keeping the
    /// network dimensions intact.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor in (0, 1]");
        let s = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.plan.churn_actions = s(self.plan.churn_actions).max(10);
        // keep enough readings between actions for joins to complete
        self.plan.events_per_action = s(self.plan.events_per_action).max(3);
        self.name = format!("{}(x{factor})", self.name);
        self
    }
}

/// One engine's measurements over the churn scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRow {
    /// The engine.
    pub engine: EngineKind,
    /// Total operator forwards (subscription load).
    pub sub_forwards: u64,
    /// Total simple-event units forwarded (event load).
    pub event_units: u64,
    /// Distinct `(subscription, simple event)` pairs delivered.
    pub delivered_units: u64,
    /// Delivered units relative to the exact naive baseline.
    pub recall_vs_exact: f64,
    /// Did the teardown suffix leave every surviving node empty?
    pub teardown_clean: bool,
}

/// Run the churn scenario through the four distributed engines.
#[must_use]
pub fn run_churn(config: &ChurnConfig) -> Vec<ChurnRow> {
    let topology = builders::balanced(config.total_nodes, 2);
    let plan = ChurnPlan::seeded(&topology, &config.plan).with_teardown();
    let mut rows: Vec<ChurnRow> = Vec::new();
    let mut exact_delivered: u64 = 0;
    for kind in EngineKind::DISTRIBUTED {
        let mut engine = kind.build(topology.clone(), config.event_validity, config.engine_seed);
        run_plan(engine.as_mut(), &plan);
        let delivered = engine.deliveries().total_event_units();
        if kind == EngineKind::Naive {
            exact_delivered = delivered;
        }
        rows.push(ChurnRow {
            engine: kind,
            sub_forwards: engine.stats().sub_forwards(),
            event_units: engine.stats().event_units(),
            delivered_units: delivered,
            recall_vs_exact: 0.0, // filled below, once the baseline is known
            teardown_clean: leaks(engine.as_mut()).is_empty(),
        });
    }
    for row in &mut rows {
        row.recall_vs_exact = if exact_delivered == 0 {
            1.0
        } else {
            row.delivered_units as f64 / exact_delivered as f64
        };
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        let mut c = ChurnConfig::paper_scale();
        c.total_nodes = 31;
        c.plan.churn_actions = 12;
        c.plan.initial_sensors = 6;
        c
    }

    #[test]
    fn deterministic_engines_keep_perfect_recall_under_churn() {
        let rows = run_churn(&tiny());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.teardown_clean, "{}: teardown leaked", row.engine);
            match row.engine {
                EngineKind::FilterSplitForward => {
                    assert!(
                        row.recall_vs_exact > 0.8 && row.recall_vs_exact <= 1.0 + 1e-12,
                        "FSF recall out of band: {}",
                        row.recall_vs_exact
                    );
                }
                _ => assert!(
                    (row.recall_vs_exact - 1.0).abs() < 1e-12,
                    "{}: deterministic recall {}",
                    row.engine,
                    row.recall_vs_exact
                ),
            }
        }
    }

    #[test]
    fn churn_runs_are_reproducible() {
        let a = run_churn(&tiny());
        let b = run_churn(&tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_shrinks_the_plan_not_the_network() {
        let c = ChurnConfig::paper_scale().scaled(0.5);
        assert_eq!(c.plan.churn_actions, 30);
        assert_eq!(c.total_nodes, 127);
        assert!(c.name.contains("x0.5"));
    }
}
