//! The `mobility` experiment scenario: handoff cost and recall when
//! **known sensor ids move between nodes**.
//!
//! A seeded [`ChurnPlan`] in the id-reusing generator mode interleaves
//! sensor moves (live handoffs and departed-id revivals) with churn and
//! readings, then tears everything down. Every engine replays the mobile
//! plan *and* its [`ChurnPlan::stationary_twin`] — the equivalent
//! fresh-identity sequence (retire the old id at its host, bring a fresh
//! id up at the new node, migrate the referencing subscriptions). The
//! scenario measures:
//!
//! * **handoff cost**: `Move` re-advertisement messages, total and per
//!   move — the protocol's price for keeping an id routable while it
//!   travels;
//! * **recall vs the stationary twin**: delivered result units relative
//!   to the same engine's twin run. A correct mobility protocol delivers
//!   the *identical* log (ratio 1.0, `twin equal` true) — full recall
//!   with zero duplicated deliveries in one number;
//! * **teardown cleanliness**: whether the post-move retraction suffix
//!   returned every node to empty (no superseded-generation residue).

use fsf_dynamics::{leaks, run_plan, ChurnAction, ChurnPlan, ChurnPlanConfig};
use fsf_engines::EngineKind;
use fsf_network::builders;

/// Parameters of the mobility experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// Scenario name (reports).
    pub name: String,
    /// Network size: a balanced binary tree of this many nodes.
    pub total_nodes: usize,
    /// The plan generator's parameters ([`ChurnPlanConfig::with_moves`]
    /// must be on).
    pub plan: ChurnPlanConfig,
    /// Event-store validity horizon for the engines (must exceed the
    /// plan's `δt`).
    pub event_validity: u64,
    /// Engine seed (feeds the probabilistic set filter).
    pub engine_seed: u64,
    /// First sensor id handed to the twin's fresh identities — must
    /// exceed every id the generator allocates.
    pub fresh_base: u32,
}

impl MobilityConfig {
    /// The default mobility setting: a 63-node balanced tree, 40 churn
    /// actions over 10 bootstrap sensors with at least 6 moves.
    #[must_use]
    pub fn paper_scale() -> Self {
        let plan = ChurnPlanConfig {
            seed: 0x0B11_E5ED,
            initial_sensors: 10,
            churn_actions: 40,
            events_per_action: 4,
            with_moves: true,
            min_moves: 6,
            ..ChurnPlanConfig::default()
        };
        MobilityConfig {
            name: "mobility".into(),
            total_nodes: 63,
            event_validity: 2 * plan.delta_t,
            engine_seed: 42,
            fresh_base: 10_000,
            plan,
        }
    }

    /// Scale down the churn volume (quick CI/bench runs), keeping the
    /// network dimensions and the move floor intact.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor in (0, 1]");
        let s = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.plan.churn_actions = s(self.plan.churn_actions).max(10);
        self.plan.events_per_action = s(self.plan.events_per_action).max(3);
        self.plan.min_moves = self.plan.min_moves.max(3);
        self.name = format!("{}(x{factor})", self.name);
        self
    }
}

/// One engine's measurements over the mobility scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityRow {
    /// The engine.
    pub engine: EngineKind,
    /// Sensor moves the plan performed.
    pub moves: u64,
    /// `Move` re-advertisement messages network-wide (the handoff bill).
    pub handoff_msgs: u64,
    /// Mean handoff messages per move.
    pub handoff_per_move: f64,
    /// Distinct `(subscription, simple event)` pairs the mobile run
    /// delivered.
    pub delivered_units: u64,
    /// Delivered units relative to the same engine's stationary-twin run.
    pub recall_vs_twin: f64,
    /// Did the mobile run produce the *identical* delivery log as the
    /// twin (full recall **and** zero duplicate deliveries)?
    pub twin_equal: bool,
    /// Did the teardown suffix leave every node empty in both runs?
    pub teardown_clean: bool,
}

/// Run the mobility scenario through all five engines, each against its
/// own stationary twin.
#[must_use]
pub fn run_mobility(config: &MobilityConfig) -> Vec<MobilityRow> {
    let topology = builders::balanced(config.total_nodes, 2);
    let base = ChurnPlan::seeded(&topology, &config.plan);
    let moves = base
        .actions
        .iter()
        .filter(|a| matches!(a, ChurnAction::Move { .. }))
        .count() as u64;
    let mobile = base.clone().with_teardown();
    let twin = base.stationary_twin(config.fresh_base).with_teardown();
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let mut m = kind.build(topology.clone(), config.event_validity, config.engine_seed);
            run_plan(m.as_mut(), &mobile);
            let mut t = kind.build(topology.clone(), config.event_validity, config.engine_seed);
            run_plan(t.as_mut(), &twin);
            let delivered = m.deliveries().total_event_units();
            let twin_delivered = t.deliveries().total_event_units();
            let stats = m.mobility_stats();
            MobilityRow {
                engine: kind,
                moves,
                handoff_msgs: stats.handoff_msgs,
                handoff_per_move: stats.handoff_per_move(),
                delivered_units: delivered,
                // a silent twin with a delivering mobile run is a
                // divergence (0.0), not perfect recall — both-zero is 1.0
                recall_vs_twin: match (twin_delivered, delivered) {
                    (0, 0) => 1.0,
                    (0, _) => 0.0,
                    _ => delivered as f64 / twin_delivered as f64,
                },
                twin_equal: m.deliveries() == t.deliveries(),
                teardown_clean: leaks(m.as_mut()).is_empty() && leaks(t.as_mut()).is_empty(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MobilityConfig {
        let mut c = MobilityConfig::paper_scale();
        c.total_nodes = 31;
        c.plan.churn_actions = 16;
        c.plan.initial_sensors = 6;
        c.plan.min_moves = 3;
        c
    }

    #[test]
    fn every_engine_matches_its_stationary_twin() {
        let rows = run_mobility(&tiny());
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.moves >= 3, "{}: only {} moves", row.engine, row.moves);
            if row.engine == EngineKind::FilterSplitForward {
                // the probabilistic set filter draws different coverage
                // decisions for the twin's renamed ids, so FSF gets the
                // usual recall band instead of exact twin equality
                assert!(
                    (0.8..=1.25).contains(&row.recall_vs_twin),
                    "{}: recall {} out of band",
                    row.engine,
                    row.recall_vs_twin
                );
            } else {
                assert!(row.twin_equal, "{}: diverged from the twin", row.engine);
                assert!(
                    (row.recall_vs_twin - 1.0).abs() < 1e-12,
                    "{}: recall {}",
                    row.engine,
                    row.recall_vs_twin
                );
            }
            assert!(row.teardown_clean, "{}: teardown leaked", row.engine);
            assert!(row.handoff_msgs > 0, "{}: free handoff?", row.engine);
            assert!(row.handoff_per_move > 0.0, "{}", row.engine);
        }
    }

    #[test]
    fn mobility_runs_are_reproducible() {
        assert_eq!(run_mobility(&tiny()), run_mobility(&tiny()));
    }

    #[test]
    fn scaling_keeps_the_move_floor() {
        let c = MobilityConfig::paper_scale().scaled(0.3);
        assert_eq!(c.total_nodes, 63);
        assert!(c.plan.min_moves >= 3);
        assert!(c.name.contains("x0.3"));
    }
}
