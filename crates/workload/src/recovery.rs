//! The `recovery` experiment scenario: recall and message cost **before,
//! during, and after** an interior-node crash.
//!
//! A seeded deployment (sensors and subscribers on leaves) publishes three
//! epoch-separated reading phases. Between phase 1 and 2 a stateless
//! interior relay crashes (auto-recovery disabled, so the outage is
//! observable); between phase 2 and 3 the recovery protocol runs. Each
//! engine's per-phase recall is measured against a crash-free naive oracle:
//! deterministic engines must sit at 1.0 before the crash, typically dip
//! during the outage, and — the point of the protocol — return to 1.0
//! after recovery. The recovery columns report what the repair cost.

use fsf_engines::EngineKind;
use fsf_model::{
    Advertisement, AttrId, Event, EventId, Point, SensorId, SubId, Subscription, Timestamp,
    ValueRange,
};
use fsf_network::{builders, NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the recovery experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Scenario name (reports).
    pub name: String,
    /// Network size: a balanced binary tree of this many nodes.
    pub total_nodes: usize,
    /// Sensors placed on random leaves.
    pub sensors: usize,
    /// Subscriptions placed on random leaves (over live sensors).
    pub subscriptions: usize,
    /// Readings published in each of the three phases.
    pub events_per_phase: usize,
    /// Temporal correlation distance of the subscriptions.
    pub delta_t: u64,
    /// Workload seed (placement, ranges, values).
    pub seed: u64,
    /// Engine seed (feeds the probabilistic set filter).
    pub engine_seed: u64,
}

impl RecoveryConfig {
    /// The default recovery setting: a 63-node tree, 10 sensors, 12
    /// subscriptions, 40 readings per phase.
    #[must_use]
    pub fn paper_scale() -> Self {
        RecoveryConfig {
            name: "recovery".into(),
            total_nodes: 63,
            sensors: 10,
            subscriptions: 12,
            events_per_phase: 40,
            delta_t: 30,
            seed: 0x4EC0_FACE,
            engine_seed: 42,
        }
    }

    /// Scale down the workload volume (quick CI/bench runs), keeping the
    /// network dimensions intact.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor in (0, 1]");
        let s = |v: usize| ((v as f64 * factor).round() as usize).max(2);
        self.subscriptions = s(self.subscriptions);
        self.events_per_phase = s(self.events_per_phase).max(6);
        self.name = format!("{}(x{factor})", self.name);
        self
    }
}

/// One engine's measurements over the three phases.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// The engine.
    pub engine: EngineKind,
    /// Delivered `(subscription, event)` units per phase.
    pub delivered: [u64; 3],
    /// Per-phase recall against the crash-free naive oracle.
    pub recall: [f64; 3],
    /// Advertisement re-flood messages the recovery cost.
    pub repair_msgs: u64,
    /// Management-plane injections during recovery.
    pub control_injections: u64,
}

/// The generated scenario (deterministic in the config).
struct Plan {
    topology: Topology,
    sensors: Vec<(NodeId, Advertisement)>,
    subs: Vec<(NodeId, Subscription)>,
    phases: [Vec<(NodeId, Event)>; 3],
    crash: NodeId,
    anchor: NodeId,
}

fn plan(config: &RecoveryConfig) -> Plan {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let topology = builders::balanced(config.total_nodes, 2);
    let median = topology.median();
    let leaves: Vec<NodeId> = topology
        .nodes()
        .filter(|&n| topology.degree(n) == 1)
        .collect();

    let mut sensors = Vec::new();
    for i in 0..config.sensors as u32 {
        // the first sensor sits in the first leaf so the crash relay below
        // always has traffic to sever
        let node = if i == 0 {
            leaves[0]
        } else {
            *leaves.choose(&mut rng).expect("leaves")
        };
        sensors.push((
            node,
            Advertisement {
                sensor: SensorId(i + 1),
                attr: AttrId((i % 5) as u16),
                location: Point::new(f64::from(i), 0.0),
            },
        ));
    }

    let mut subs = Vec::new();
    for i in 0..config.subscriptions as u64 {
        let node = if i == 0 {
            *leaves.last().expect("leaves")
        } else {
            *leaves.choose(&mut rng).expect("leaves")
        };
        let arity = rng.gen_range(1..=2usize).min(sensors.len());
        let mut pool: Vec<u32> = (1..=config.sensors as u32).collect();
        pool.shuffle(&mut rng);
        let picked = if i == 0 {
            vec![1u32]
        } else {
            pool[..arity].to_vec()
        };
        let filters: Vec<(SensorId, ValueRange)> = picked
            .iter()
            .map(|&s| {
                let half = rng.gen_range(15.0..45.0);
                let center = rng.gen_range(half..(100.0 - half).max(half + 0.1));
                (SensorId(s), ValueRange::new(center - half, center + half))
            })
            .collect();
        subs.push((
            node,
            Subscription::identified(SubId(i + 1), filters, config.delta_t).unwrap(),
        ));
    }

    let hosts: Vec<NodeId> = sensors
        .iter()
        .map(|(n, _)| *n)
        .chain(subs.iter().map(|(n, _)| *n))
        .collect();
    let path = topology.path(sensors[0].0, subs[0].0);
    let crash = path
        .iter()
        .copied()
        .find(|&n| topology.degree(n) > 1 && n != median && !hosts.contains(&n))
        .expect("a balanced tree has a stateless relay on the corner-to-corner path");
    let anchor = topology.neighbors(crash)[0];

    // three reading phases in disjoint correlation epochs (no window
    // straddles the crash or the recovery)
    let epoch_gap = 100 * config.delta_t;
    let mut next_event = 0u64;
    let phases = [0u64, 1, 2].map(|phase| {
        let base_t = 1_000 + phase * epoch_gap;
        (0..config.events_per_phase)
            .map(|i| {
                let &(node, adv) = sensors
                    .get((rng.gen_range(0u32..sensors.len() as u32)) as usize)
                    .expect("non-empty");
                next_event += 1;
                (
                    node,
                    Event {
                        id: EventId(phase * 1_000_000 + next_event),
                        sensor: adv.sensor,
                        attr: adv.attr,
                        location: adv.location,
                        value: rng.gen_range(0.0..100.0),
                        timestamp: Timestamp(base_t + 3 * i as u64),
                    },
                )
            })
            .collect::<Vec<_>>()
    });

    Plan {
        topology,
        sensors,
        subs,
        phases,
        crash,
        anchor,
    }
}

/// Run the recovery scenario through all five engines. The oracle is a
/// crash-free naive run over the same workload.
#[must_use]
pub fn run_recovery(config: &RecoveryConfig) -> Vec<RecoveryRow> {
    let plan = plan(config);
    let validity = 2 * config.delta_t;

    let run = |kind: EngineKind, with_crash: bool| -> ([u64; 3], u64, u64) {
        let mut e = kind.build(plan.topology.clone(), validity, config.engine_seed);
        e.set_auto_recover(false);
        for &(node, adv) in &plan.sensors {
            e.inject_sensor(node, adv);
            e.flush();
        }
        for (node, sub) in &plan.subs {
            e.inject_subscription(*node, sub.clone());
            e.flush();
        }
        let mut delivered = [0u64; 3];
        let mut seen = 0u64;
        for (i, phase) in plan.phases.iter().enumerate() {
            if with_crash && i == 1 {
                e.crash_node(plan.crash, plan.anchor)
                    .expect("anchor is a neighbor");
                e.flush();
            }
            if with_crash && i == 2 {
                e.recover();
                e.flush();
            }
            for &(node, ev) in phase {
                e.inject_event(node, ev);
                e.flush();
            }
            let total = e.deliveries().total_event_units();
            delivered[i] = total - seen;
            seen = total;
        }
        let stats = e.recovery_stats();
        (delivered, stats.repair_msgs, stats.control_injections)
    };

    let (oracle, _, _) = run(EngineKind::Naive, false);
    EngineKind::ALL
        .iter()
        .map(|&kind| {
            let (delivered, repair_msgs, control_injections) = run(kind, true);
            let recall = [0, 1, 2].map(|i| {
                if oracle[i] == 0 {
                    1.0
                } else {
                    delivered[i] as f64 / oracle[i] as f64
                }
            });
            RecoveryRow {
                engine: kind,
                delivered,
                recall,
                repair_msgs,
                control_injections,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RecoveryConfig {
        let mut c = RecoveryConfig::paper_scale();
        c.total_nodes = 31;
        c.sensors = 6;
        c.subscriptions = 6;
        c.events_per_phase = 15;
        c
    }

    #[test]
    fn recovery_rows_show_outage_and_restoration() {
        let rows = run_recovery(&tiny());
        assert_eq!(rows.len(), 5);
        for row in &rows {
            // pre-crash and post-recovery recall: exact engines at 1.0,
            // the probabilistic filter inside its usual band
            for phase in [0usize, 2] {
                if row.engine == EngineKind::FilterSplitForward {
                    assert!(
                        row.recall[phase] > 0.8 && row.recall[phase] <= 1.0 + 1e-12,
                        "{}: phase {phase} recall {}",
                        row.engine,
                        row.recall[phase]
                    );
                } else {
                    assert!(
                        (row.recall[phase] - 1.0).abs() < 1e-12,
                        "{}: phase {phase} recall {} != 1.0",
                        row.engine,
                        row.recall[phase]
                    );
                }
            }
            assert!(row.recall[1] <= 1.0 + 1e-12, "{}", row.engine);
            // the repair itself was charged for the distributed engines
            if row.engine != EngineKind::Centralized {
                assert!(row.repair_msgs > 0, "{}: free recovery?", row.engine);
            }
        }
        // the outage is visible for at least one distributed engine
        assert!(
            rows.iter()
                .any(|r| r.engine != EngineKind::Centralized && r.recall[1] < 1.0),
            "the crash severed nothing: {rows:?}"
        );
    }

    #[test]
    fn recovery_runs_are_reproducible() {
        assert_eq!(run_recovery(&tiny()), run_recovery(&tiny()));
    }

    #[test]
    fn scaling_shrinks_the_workload_not_the_network() {
        let c = RecoveryConfig::paper_scale().scaled(0.5);
        assert_eq!(c.total_nodes, 63);
        assert_eq!(c.subscriptions, 6);
        assert_eq!(c.events_per_phase, 20);
    }
}
