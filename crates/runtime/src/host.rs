//! The production node host: every topology node runs as an asynchronous
//! task (or a dedicated thread) with a **bounded mailbox**, explicit
//! backpressure, and the binary [`crate::codec`] on every link.
//!
//! This is the deployment-shaped counterpart of the discrete-event
//! simulator in `fsf-network` and the legacy [`crate::ThreadedNet`]:
//!
//! * **Bounded mailboxes.** Each node owns one bounded channel (the wire's
//!   receive buffer). A sender facing a full mailbox *parks* — nothing is
//!   ever dropped — and every park is counted in the [`HostLedger`].
//! * **Deadlock-free backpressure.** Before parking on a full peer, a node
//!   drains its *own* mailbox into a local staging queue (the application
//!   reading the socket so the kernel buffer frees). A node parked on a
//!   full peer therefore always has an empty mailbox of its own, so a
//!   cycle of mutually-full mailboxes cannot form.
//! * **Wire framing.** Every link message and injection crosses its
//!   channel as an encoded [`crate::codec::WireMsg`] frame and is decoded
//!   on arrival — the channels carry bytes, exactly as sockets would.
//! * **Per-link write batching.** Within one handler's outbox, adjacent
//!   frames bound for the same peer are coalesced through
//!   [`crate::codec::WireMsg::coalesce`] (`Events` runs merge into one
//!   frame; control messages never merge, preserving per-link FIFO).
//!   Traffic is charged per original message, so [`TrafficStats`] stays
//!   comparable; the ledger counts the saved frames.
//! * **Virtual timestamps.** Packets carry a logical `at`; each hop adds
//!   the [`LatencyModel`] delay, so delivery latencies remain measurable
//!   against the timed simulator's reference timeline even though
//!   execution itself is free-running.
//! * **Churn.** The topology lives behind a shared snapshot;
//!   [`NodeHost::crash_and_regraft`] re-grafts it, marks the corpse down
//!   (subsequent traffic to it is counted `dropped_to_downed`), and
//!   broadcasts [`NodeBehavior::on_topology_change`];
//!   [`NodeHost::run_recovery`] runs the survivors' recovery protocol.
//!
//! * **Partitions.** [`NodeHost::sever_link`] marks a link severed in the
//!   shared topology snapshot: frames bound across the cut die at the
//!   sender's radio — charged, counted `dropped_severed`, never delivered.
//!   [`NodeHost::heal_link`] re-enables the link and runs
//!   [`NodeBehavior::on_link_up`] on both live endpoints so divergent
//!   state reconciles in-protocol.
//! * **Liveness.** The free-running host has no virtual clock to ride, so
//!   its failure detector probes on management-plane ticks:
//!   [`NodeHost::liveness_tick`] checks every live node's view of each
//!   neighbor (down or severed ⇒ miss), with the same
//!   suspicion/confirmation semantics as the simulator's heartbeats.
//!
//! The conservation ledger reconciles at quiescence:
//! `scheduled == handled + dropped_to_downed + dropped_severed` —
//! backpressure parks senders instead of dropping, and the robustness
//! battery holds the host to it.

use crate::codec::WireMsg;
use bytes::Bytes;
use fsf_model::EventId;
use fsf_network::{
    ChargeKind, Ctx, DeliveryLog, LatencyModel, NodeBehavior, NodeId, RegraftDelta, Topology,
    TopologyError, TrafficStats,
};
use miniloop::sync::mpsc;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

/// How the node bodies execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostMode {
    /// One dedicated OS thread per node, each driving the node task with
    /// [`miniloop::block_on`] — the paper's one-JVM-per-Xen-VM shape.
    ThreadPerNode,
    /// All nodes multiplexed as tasks on a [`miniloop::Runtime`] with the
    /// given number of worker threads — the service deployment shape.
    Executor {
        /// Executor worker threads (clamped to at least 1).
        workers: usize,
    },
}

/// Host construction knobs.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Execution mode (threads vs executor tasks).
    pub mode: HostMode,
    /// Bounded mailbox capacity per node, in wire frames (clamped ≥ 1).
    pub mailbox: usize,
    /// Per-link delay added to packet timestamps (virtual ticks — the
    /// host's execution is free-running; the timestamps keep the delivery
    /// latency measurements aligned with the timed simulator).
    pub latency: LatencyModel,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            mode: HostMode::Executor { workers: 4 },
            mailbox: 64,
            latency: LatencyModel::Zero,
        }
    }
}

/// The host's conservation ledger, all counters cumulative.
///
/// At quiescence `scheduled == handled + dropped_to_downed +
/// dropped_severed`: every frame accepted by the host is either delivered
/// to a behavior or accounted to a downed node or a severed link —
/// backpressure parks senders, it never drops silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostLedger {
    /// Frames accepted by the host (injections + link sends).
    pub scheduled: u64,
    /// Frames delivered to a node behavior.
    pub handled: u64,
    /// Frames addressed to a downed node (charged, then dropped at the
    /// wire — the corpse cannot receive).
    pub dropped_to_downed: u64,
    /// Frames that died at the sender's radio because the link was
    /// severed (charged, never delivered).
    pub dropped_severed: u64,
    /// Times a sender parked on a full mailbox (backpressure events).
    pub parks: u64,
    /// Encoded frames that actually crossed a link (after batching).
    pub wire_frames: u64,
    /// Bytes across all links (after batching).
    pub wire_bytes: u64,
    /// Original messages absorbed into a neighboring frame by per-link
    /// write batching (each saved one wire frame).
    pub coalesced_frames: u64,
}

/// A control closure executed on a node's own task with a live [`Ctx`]
/// (sends it makes are charged and delivered like any message).
pub type ControlFn<B> =
    Box<dyn FnOnce(&mut B, &mut Ctx<'_, <B as NodeBehavior>::Msg>) + Send + 'static>;

enum Packet<B: NodeBehavior> {
    /// An encoded message frame (injection or link traffic).
    Wire {
        from: NodeId,
        at: u64,
        frame: Bytes,
    },
    /// A management-plane closure, acknowledged after its outbox flushed.
    Ctl {
        run: ControlFn<B>,
        at: u64,
        ack: std::sync::mpsc::Sender<()>,
    },
    Stop,
}

/// Probe-based failure-detector state (the host analogue of the
/// simulator's heartbeat liveness — see [`NodeHost::liveness_tick`]).
struct HostLiveness {
    /// Consecutive missed probe rounds before `(observer, peer)` suspicion
    /// (⌈timeout / period⌉, mirroring the simulator's knobs).
    threshold: u64,
    /// Consecutive misses per directed neighbor pair.
    misses: std::collections::BTreeMap<(NodeId, NodeId), u64>,
    /// Directed suspicions currently active.
    suspected: std::collections::BTreeSet<(NodeId, NodeId)>,
    /// Nodes newly confirmed dead, drained by
    /// [`NodeHost::take_confirmed_dead`].
    confirmed: Vec<NodeId>,
    /// Everything ever confirmed (until a successful probe re-admits it).
    confirmed_ever: std::collections::BTreeSet<NodeId>,
}

struct HostShared {
    stats: Mutex<TrafficStats>,
    deliveries: Mutex<DeliveryLog>,
    /// Messages injected or sent but not yet fully processed; 0 ⇒ quiescent.
    pending: AtomicI64,
    topology: Mutex<Arc<Topology>>,
    down: Vec<AtomicBool>,
    latency: LatencyModel,
    /// High-water logical packet timestamp observed by any handler.
    clock: AtomicU64,
    scheduled: AtomicU64,
    handled: AtomicU64,
    dropped_to_downed: AtomicU64,
    dropped_severed: AtomicU64,
    parks: AtomicU64,
    wire_frames: AtomicU64,
    wire_bytes: AtomicU64,
    coalesced_frames: AtomicU64,
    liveness: Mutex<Option<HostLiveness>>,
}

impl HostShared {
    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.lock())
    }

    fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize].load(Ordering::Acquire)
    }
}

enum Running {
    Threads(Vec<std::thread::JoinHandle<()>>),
    Executor {
        // field order = drop order: join handles die before the runtime
        tasks: Vec<miniloop::JoinHandle<()>>,
        rt: miniloop::Runtime,
    },
}

/// A deployed network of node behaviors — see the module docs.
pub struct NodeHost<B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    txs: Vec<mpsc::Sender<Packet<B>>>,
    shared: Arc<HostShared>,
    running: Option<Running>,
}

impl<B> NodeHost<B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    /// Deploy one node per topology entry. `make_node` builds each node's
    /// behavior on the calling thread.
    #[must_use]
    pub fn spawn(
        topology: &Topology,
        config: &HostConfig,
        mut make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        let n = topology.len();
        let shared = Arc::new(HostShared {
            stats: Mutex::new(TrafficStats::new()),
            deliveries: Mutex::new(DeliveryLog::new()),
            pending: AtomicI64::new(0),
            topology: Mutex::new(Arc::new(topology.clone())),
            down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            latency: config.latency.clone(),
            clock: AtomicU64::new(0),
            scheduled: AtomicU64::new(0),
            handled: AtomicU64::new(0),
            dropped_to_downed: AtomicU64::new(0),
            dropped_severed: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wire_frames: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
            coalesced_frames: AtomicU64::new(0),
            liveness: Mutex::new(None),
        });
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel(config.mailbox.max(1));
            txs.push(tx);
            rxs.push(rx);
        }
        let txs_shared = Arc::new(txs.clone());
        let running = match config.mode {
            HostMode::ThreadPerNode => {
                let mut handles = Vec::with_capacity(n);
                for (idx, rx) in rxs.into_iter().enumerate() {
                    let id = NodeId(idx as u32);
                    let node = make_node(id, topology);
                    let txs = Arc::clone(&txs_shared);
                    let shared = Arc::clone(&shared);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("fsf-node-{idx}"))
                            .spawn(move || {
                                miniloop::block_on(node_task(id, node, rx, txs, shared));
                            })
                            .expect("spawn node thread"),
                    );
                }
                Running::Threads(handles)
            }
            HostMode::Executor { workers } => {
                let rt = miniloop::Builder::new_multi_thread()
                    .worker_threads(workers)
                    .build();
                let tasks = rxs
                    .into_iter()
                    .enumerate()
                    .map(|(idx, rx)| {
                        let id = NodeId(idx as u32);
                        let node = make_node(id, topology);
                        let txs = Arc::clone(&txs_shared);
                        let shared = Arc::clone(&shared);
                        rt.spawn(node_task(id, node, rx, txs, shared))
                    })
                    .collect();
                Running::Executor { tasks, rt }
            }
        };
        NodeHost {
            txs,
            shared,
            running: Some(running),
        }
    }

    /// Inject a local item at `node` with logical timestamp `at` (the node
    /// sees `from == node`). Injections at a downed node are accounted
    /// `dropped_to_downed`, mirroring the simulator. Backpressure applies:
    /// a full mailbox parks the *calling thread* until the node drains.
    pub fn inject(&self, node: NodeId, msg: &B::Msg, at: u64) {
        self.shared.scheduled.fetch_add(1, Ordering::SeqCst);
        if self.shared.is_down(node) {
            self.shared.dropped_to_downed.fetch_add(1, Ordering::SeqCst);
            return;
        }
        let frame = msg.to_frame();
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        if self.txs[node.0 as usize]
            .blocking_send(Packet::Wire {
                from: node,
                at,
                frame,
            })
            .is_err()
        {
            panic!("inject into a stopped node task");
        }
    }

    /// Record an event injection time in the shared delivery log (feeds
    /// the latency percentiles).
    pub fn note_injection(&self, event: EventId, at: u64) {
        self.shared.deliveries.lock().note_injection(event, at);
    }

    /// Block until no message is queued or being processed anywhere.
    pub fn wait_quiescent(&self) {
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Crash `node` at quiescence: re-graft its orphans onto `anchor`,
    /// mark it down, and broadcast the new topology to every survivor
    /// ([`NodeBehavior::on_topology_change`] on each node's own task).
    ///
    /// # Errors
    /// Fails if `anchor` is downed or not a neighbor of `node`.
    pub fn crash_and_regraft(
        &self,
        node: NodeId,
        anchor: NodeId,
        at: u64,
    ) -> Result<RegraftDelta, TopologyError> {
        if self.shared.is_down(anchor) {
            return Err(TopologyError::BadEdge(node.0, anchor.0));
        }
        let new_topology;
        let delta;
        {
            let mut topo = self.shared.topology.lock();
            let (t, d) = topo.regraft_with_delta(node, anchor)?;
            new_topology = Arc::new(t);
            delta = d;
            *topo = Arc::clone(&new_topology);
        }
        self.shared.down[node.0 as usize].store(true, Ordering::Release);
        // every survivor refreshes routing state against the new snapshot
        let ids: Vec<NodeId> = (0..self.txs.len() as u32).map(NodeId).collect();
        for id in ids {
            if self.shared.is_down(id) {
                continue;
            }
            let topo = Arc::clone(&new_topology);
            self.with_node(
                id,
                at,
                Box::new(move |node, _ctx| node.on_topology_change(&topo)),
            );
        }
        Ok(delta)
    }

    /// Run the crash-recovery protocol for one regraft: every surviving
    /// node gets [`NodeBehavior::on_recover`] on its own task, in id
    /// order, with a live [`Ctx`] — its repair sends are charged and
    /// delivered like any traffic (flush afterwards to drain them).
    pub fn run_recovery(&self, delta: &RegraftDelta, at: u64) {
        for idx in 0..self.txs.len() {
            let id = NodeId(idx as u32);
            if self.shared.is_down(id) {
                continue;
            }
            let delta = delta.clone();
            self.with_node(
                id,
                at,
                Box::new(move |node, ctx| node.on_recover(&delta, ctx)),
            );
        }
    }

    /// Execute a control closure on `id`'s own task and block until it —
    /// and the flush of any sends it made — completed.
    ///
    /// # Panics
    /// Panics if `id` is downed (corpses accept no management traffic).
    pub fn with_node(&self, id: NodeId, at: u64, run: ControlFn<B>) {
        assert!(
            !self.shared.is_down(id),
            "control message to downed node n{}",
            id.0
        );
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        if self.txs[id.0 as usize]
            .blocking_send(Packet::Ctl {
                run,
                at,
                ack: ack_tx,
            })
            .is_err()
        {
            panic!("control message to a stopped node task");
        }
        ack_rx.recv().expect("node task alive for ack");
    }

    /// Sever the link between the adjacent nodes `a` and `b`: frames
    /// bound across the cut die at the sender's radio from now on —
    /// charged, counted `dropped_severed`, never delivered. Frames already
    /// in a mailbox still arrive. Idempotent.
    ///
    /// # Errors
    /// Fails if `(a, b)` is not an edge of the topology.
    pub fn sever_link(&self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        let mut topo = self.shared.topology.lock();
        let mut t = (**topo).clone();
        t.sever_link(a, b)?;
        *topo = Arc::new(t);
        Ok(())
    }

    /// Heal a severed link and run [`NodeBehavior::on_link_up`] on both
    /// live endpoints (each on its own task, with a live [`Ctx`] — the
    /// reconciliation sends are charged and delivered like any traffic;
    /// flush afterwards to drain them). A no-op on a link that was not
    /// severed.
    ///
    /// # Errors
    /// Fails if `(a, b)` is not an edge of the topology.
    pub fn heal_link(&self, a: NodeId, b: NodeId, at: u64) -> Result<(), TopologyError> {
        let was_severed = {
            let mut topo = self.shared.topology.lock();
            let was = topo.is_severed(a, b);
            let mut t = (**topo).clone();
            t.heal_link(a, b)?;
            *topo = Arc::new(t);
            was
        };
        if !was_severed {
            return Ok(());
        }
        for (node, peer) in [(a, b), (b, a)] {
            if self.shared.is_down(node) {
                continue;
            }
            self.with_node(node, at, Box::new(move |n, ctx| n.on_link_up(peer, ctx)));
        }
        Ok(())
    }

    /// Enable the probe-based failure detector. `period`/`timeout` mirror
    /// the simulator's heartbeat knobs: a neighbor must miss
    /// `⌈timeout / period⌉` consecutive [`Self::liveness_tick`] rounds
    /// before suspicion.
    pub fn set_liveness(&self, period: u64, timeout: u64) {
        assert!(period > 0, "probe period must be positive");
        assert!(timeout > 0, "suspicion timeout must be positive");
        *self.shared.liveness.lock() = Some(HostLiveness {
            threshold: timeout.div_ceil(period).max(1),
            misses: std::collections::BTreeMap::new(),
            suspected: std::collections::BTreeSet::new(),
            confirmed: Vec::new(),
            confirmed_ever: std::collections::BTreeSet::new(),
        });
    }

    /// One probe round of the host's failure detector (a no-op until
    /// [`Self::set_liveness`]). The free-running host has no virtual clock
    /// for heartbeats to ride, so the management loop drives beats
    /// explicitly: each live node probes each neighbor, and a probe misses
    /// exactly when the simulator's ping would die at a radio — the peer
    /// is down or the link is severed. `threshold` consecutive misses ⇒
    /// suspicion; every live neighbor suspecting ⇒ confirmed dead (read
    /// with [`Self::take_confirmed_dead`]); a successful probe clears the
    /// suspicion and re-admits a falsely confirmed peer.
    pub fn liveness_tick(&self) {
        let topo = self.shared.topology();
        let mut guard = self.shared.liveness.lock();
        let Some(lv) = guard.as_mut() else {
            return;
        };
        for idx in 0..topo.len() {
            let a = NodeId(idx as u32);
            if self.shared.is_down(a) {
                continue;
            }
            for &b in topo.neighbors(a) {
                if !self.shared.is_down(b) && !topo.is_severed(a, b) {
                    lv.misses.remove(&(a, b));
                    lv.suspected.remove(&(a, b));
                    // the probe's "pong": a reachable live peer cannot
                    // stay confirmed
                    lv.confirmed_ever.remove(&b);
                } else {
                    let m = lv.misses.entry((a, b)).or_insert(0);
                    *m += 1;
                    if *m >= lv.threshold {
                        lv.suspected.insert((a, b));
                    }
                }
            }
        }
        let suspects: std::collections::BTreeSet<NodeId> =
            lv.suspected.iter().map(|&(_, x)| x).collect();
        for x in suspects {
            if lv.confirmed_ever.contains(&x) {
                continue;
            }
            // corpses cast no vote: confirmation needs every *live*
            // neighbor to agree
            let unanimous = topo
                .neighbors(x)
                .iter()
                .all(|&nb| self.shared.is_down(nb) || lv.suspected.contains(&(nb, x)));
            if unanimous {
                lv.confirmed_ever.insert(x);
                lv.confirmed.push(x);
            }
        }
    }

    /// Active directed `(observer, suspect)` suspicions, sorted.
    #[must_use]
    pub fn suspicions(&self) -> Vec<(NodeId, NodeId)> {
        self.shared
            .liveness
            .lock()
            .as_ref()
            .map(|lv| lv.suspected.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drain the nodes newly confirmed dead by the failure detector (each
    /// node appears once per confirmation; a successful probe re-admits a
    /// falsely confirmed node so it can be re-confirmed later).
    pub fn take_confirmed_dead(&self) -> Vec<NodeId> {
        self.shared
            .liveness
            .lock()
            .as_mut()
            .map(|lv| std::mem::take(&mut lv.confirmed))
            .unwrap_or_default()
    }

    /// Is the node marked down?
    #[must_use]
    pub fn is_down(&self, node: NodeId) -> bool {
        self.shared.is_down(node)
    }

    /// The current topology snapshot.
    #[must_use]
    pub fn topology(&self) -> Arc<Topology> {
        self.shared.topology()
    }

    /// Snapshot of the accumulated traffic counters.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.shared.stats.lock().clone()
    }

    /// Snapshot of the accumulated deliveries.
    #[must_use]
    pub fn deliveries(&self) -> DeliveryLog {
        self.shared.deliveries.lock().clone()
    }

    /// Snapshot of the conservation ledger.
    #[must_use]
    pub fn ledger(&self) -> HostLedger {
        HostLedger {
            scheduled: self.shared.scheduled.load(Ordering::SeqCst),
            handled: self.shared.handled.load(Ordering::SeqCst),
            dropped_to_downed: self.shared.dropped_to_downed.load(Ordering::SeqCst),
            dropped_severed: self.shared.dropped_severed.load(Ordering::SeqCst),
            parks: self.shared.parks.load(Ordering::SeqCst),
            wire_frames: self.shared.wire_frames.load(Ordering::SeqCst),
            wire_bytes: self.shared.wire_bytes.load(Ordering::SeqCst),
            coalesced_frames: self.shared.coalesced_frames.load(Ordering::SeqCst),
        }
    }

    /// Messages accepted but not yet fully processed (0 at quiescence).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst).max(0) as usize
    }

    /// High-water logical packet timestamp any handler has observed.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.shared.clock.load(Ordering::SeqCst)
    }

    /// Stop every node (including idle corpses) and return the final
    /// aggregates.
    pub fn shutdown(mut self) -> (TrafficStats, DeliveryLog) {
        self.wait_quiescent();
        self.stop_and_join();
        let stats = self.shared.stats.lock().clone();
        let deliveries = self.shared.deliveries.lock().clone();
        (stats, deliveries)
    }

    fn stop_and_join(&mut self) {
        let Some(running) = self.running.take() else {
            return;
        };
        for tx in &self.txs {
            let _ = tx.blocking_send(Packet::Stop);
        }
        match running {
            Running::Threads(handles) => {
                for h in handles {
                    h.join().expect("node thread panicked");
                }
            }
            Running::Executor { tasks, rt } => {
                for t in tasks {
                    t.join();
                }
                rt.shutdown();
            }
        }
    }
}

impl<B> Drop for NodeHost<B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The body every node runs, identical across both host modes.
async fn node_task<B>(
    id: NodeId,
    mut node: B,
    mut rx: mpsc::Receiver<Packet<B>>,
    txs: Arc<Vec<mpsc::Sender<Packet<B>>>>,
    shared: Arc<HostShared>,
) where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    // Packets drained out of the mailbox while this node was itself
    // parked on a full peer (see SendLinked); processed before new
    // arrivals, preserving per-link FIFO.
    let mut staging: VecDeque<Packet<B>> = VecDeque::new();
    let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
    let mut local_deliveries = DeliveryLog::new();
    loop {
        let pkt = match staging.pop_front() {
            Some(p) => p,
            None => match rx.recv().await {
                Some(p) => p,
                None => break,
            },
        };
        match pkt {
            Packet::Stop => break,
            Packet::Ctl { run, at, ack } => {
                let topo = shared.topology();
                {
                    let mut ctx = Ctx::external(
                        id,
                        topo.neighbors(id),
                        at,
                        &mut outbox,
                        &mut local_deliveries,
                    );
                    run(&mut node, &mut ctx);
                }
                merge_deliveries(&shared, &mut local_deliveries);
                flush_outbox(id, at, &mut outbox, &mut rx, &mut staging, &txs, &shared).await;
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                let _ = ack.send(());
            }
            Packet::Wire { from, at, frame } => {
                let msg = B::Msg::from_frame(frame).expect("malformed wire frame");
                shared.clock.fetch_max(at, Ordering::SeqCst);
                let topo = shared.topology();
                {
                    let mut ctx = Ctx::external(
                        id,
                        topo.neighbors(id),
                        at,
                        &mut outbox,
                        &mut local_deliveries,
                    );
                    node.on_message(from, msg, &mut ctx);
                }
                merge_deliveries(&shared, &mut local_deliveries);
                flush_outbox(id, at, &mut outbox, &mut rx, &mut staging, &txs, &shared).await;
                shared.handled.fetch_add(1, Ordering::SeqCst);
                // decrement only after our own sends were registered, so
                // the pending count can never dip to zero early
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn merge_deliveries(shared: &HostShared, local: &mut DeliveryLog) {
    if local.complex_deliveries() > 0 {
        shared.deliveries.lock().merge(local);
        *local = DeliveryLog::new();
    }
}

/// Charge, batch, encode and send one handler's outbox.
async fn flush_outbox<B>(
    id: NodeId,
    at: u64,
    outbox: &mut Vec<(NodeId, B::Msg, ChargeKind, u64)>,
    rx: &mut mpsc::Receiver<Packet<B>>,
    staging: &mut VecDeque<Packet<B>>,
    txs: &Arc<Vec<mpsc::Sender<Packet<B>>>>,
    shared: &Arc<HostShared>,
) where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    if outbox.is_empty() {
        return;
    }
    // traffic is charged per original message, before batching — the
    // counters stay comparable with the simulator's
    {
        let mut stats = shared.stats.lock();
        for (to, _, kind, units) in outbox.iter() {
            stats.charge(*kind, id, *to, *units);
        }
    }
    // per-link write batching: only *adjacent* frames to the same peer may
    // merge, so a control message between two Events runs keeps its FIFO
    // position on the link
    let mut wire: Vec<(NodeId, B::Msg)> = Vec::with_capacity(outbox.len());
    for (to, msg, _, _) in outbox.drain(..) {
        if let Some((last_to, last_msg)) = wire.last_mut() {
            if *last_to == to {
                match last_msg.coalesce(msg) {
                    Ok(()) => {
                        shared.coalesced_frames.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    Err(back) => {
                        wire.push((to, back));
                        continue;
                    }
                }
            }
        }
        wire.push((to, msg));
    }
    let topo = shared.topology();
    for (to, msg) in wire {
        shared.scheduled.fetch_add(1, Ordering::SeqCst);
        if shared.is_down(to) {
            // charged above, dropped at the wire: the corpse cannot receive
            shared.dropped_to_downed.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        if topo.is_severed(id, to) {
            // charged above, died at the radio: the cut carries nothing
            shared.dropped_severed.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        let frame = msg.to_frame();
        shared.wire_frames.fetch_add(1, Ordering::SeqCst);
        shared
            .wire_bytes
            .fetch_add(frame.len() as u64, Ordering::SeqCst);
        shared.pending.fetch_add(1, Ordering::SeqCst);
        let deliver_at = at + shared.latency.delay(id, to);
        SendLinked {
            tx: &txs[to.0 as usize],
            rx,
            staging,
            shared,
            item: Some(Packet::Wire {
                from: id,
                at: deliver_at,
                frame,
            }),
            parked: false,
        }
        .await;
    }
}

/// Send one packet with drain-before-park backpressure.
///
/// On a full peer mailbox the future first drains this node's *own*
/// mailbox into the staging queue (freeing slots wakes senders parked on
/// us), then parks registered on **both** the peer's capacity and our own
/// mailbox — whichever fires re-polls. A parked node therefore always has
/// an empty mailbox, which makes a cycle of mutually-blocked senders
/// impossible.
struct SendLinked<'a, B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    tx: &'a mpsc::Sender<Packet<B>>,
    rx: &'a mut mpsc::Receiver<Packet<B>>,
    staging: &'a mut VecDeque<Packet<B>>,
    shared: &'a Arc<HostShared>,
    item: Option<Packet<B>>,
    parked: bool,
}

impl<B> Unpin for SendLinked<'_, B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
}

impl<B> Future for SendLinked<'_, B>
where
    B: NodeBehavior + Send + 'static,
    B::Msg: WireMsg + Send + 'static,
{
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        loop {
            let item = this
                .item
                .take()
                .expect("SendLinked polled after completion");
            match this.tx.try_send(item) {
                Ok(()) => return Poll::Ready(()),
                Err(mpsc::TrySendError::Closed(_)) => {
                    panic!("send to a stopped node task (host shut down mid-run?)")
                }
                Err(mpsc::TrySendError::Full(back)) => this.item = Some(back),
            }
            // Drain our own mailbox: frees slots (waking senders parked on
            // us) and, once empty, registers our waker for new arrivals.
            let mut drained = false;
            while let Poll::Ready(Some(p)) = this.rx.poll_recv(cx) {
                this.staging.push_back(p);
                drained = true;
            }
            if drained {
                // capacity may have opened anywhere in the cycle — retry
                continue;
            }
            match this.tx.poll_ready(cx) {
                Poll::Ready(_) => continue, // a slot freed while we drained
                Poll::Pending => {
                    if !this.parked {
                        this.parked = true;
                        this.shared.parks.fetch_add(1, Ordering::SeqCst);
                    }
                    return Poll::Pending;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_network::builders;

    /// Flooding behavior over the `u64` test message (mirrors the
    /// ThreadedNet test double). `u64` gets a tiny wire form locally.
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            let me = ctx.node();
            for n in ctx.neighbors().to_vec() {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    impl WireMsg for u64 {
        fn encode(&self, buf: &mut bytes::BytesMut) {
            use bytes::BufMut;
            buf.put_u64(*self);
        }
        fn decode(buf: &mut Bytes) -> Option<Self> {
            use bytes::Buf;
            if buf.remaining() < 8 {
                return None;
            }
            Some(buf.get_u64())
        }
    }

    fn modes() -> [HostMode; 2] {
        [HostMode::ThreadPerNode, HostMode::Executor { workers: 3 }]
    }

    #[test]
    fn flood_matches_simulator_traffic_in_both_modes() {
        for mode in modes() {
            let topo = builders::balanced(31, 2);
            let config = HostConfig {
                mode,
                mailbox: 4,
                latency: LatencyModel::Zero,
            };
            let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
            host.inject(NodeId(0), &7, 0);
            host.wait_quiescent();
            host.inject(NodeId(30), &8, 0);
            host.wait_quiescent();
            let ledger = host.ledger();
            assert_eq!(
                ledger.scheduled,
                ledger.handled + ledger.dropped_to_downed,
                "{mode:?}: ledger must reconcile at quiescence"
            );
            let (stats, _) = host.shutdown();
            assert_eq!(
                stats.adv_msgs(),
                2 * 30,
                "{mode:?}: each flood crosses every link once"
            );
        }
    }

    #[test]
    fn tiny_mailboxes_park_but_never_drop() {
        for mode in modes() {
            let topo = builders::balanced(15, 2);
            let config = HostConfig {
                mode,
                mailbox: 1, // worst case: every concurrent send contends
                latency: LatencyModel::Zero,
            };
            let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
            for i in 0..50u64 {
                host.inject(NodeId((i % 15) as u32), &(1000 + i), 0);
            }
            host.wait_quiescent();
            let ledger = host.ledger();
            assert_eq!(ledger.scheduled, ledger.handled, "{mode:?}: no drops");
            let (stats, _) = host.shutdown();
            assert_eq!(stats.adv_msgs(), 50 * 14, "{mode:?}");
        }
    }

    #[test]
    fn crash_marks_down_and_accounts_dropped_traffic() {
        let topo = builders::line(4);
        let config = HostConfig {
            mode: HostMode::Executor { workers: 2 },
            mailbox: 8,
            latency: LatencyModel::Zero,
        };
        let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
        host.inject(NodeId(0), &1, 0);
        host.wait_quiescent();
        let delta = host.crash_and_regraft(NodeId(3), NodeId(2), 0).unwrap();
        assert_eq!(delta.crashed, NodeId(3));
        assert!(host.is_down(NodeId(3)));
        // a fresh flood: n2 still forwards toward the corpse (it remains a
        // leaf neighbor), and that frame is dropped at the wire
        host.inject(NodeId(0), &2, 0);
        host.wait_quiescent();
        let ledger = host.ledger();
        assert!(ledger.dropped_to_downed > 0, "corpse traffic not accounted");
        assert_eq!(ledger.scheduled, ledger.handled + ledger.dropped_to_downed);
        // injections at the corpse are dropped, not delivered
        host.inject(NodeId(3), &9, 0);
        host.wait_quiescent();
        let after = host.ledger();
        assert_eq!(after.dropped_to_downed, ledger.dropped_to_downed + 1);
    }

    #[test]
    fn severed_links_drop_at_the_radio_until_healed() {
        let topo = builders::line(3);
        let config = HostConfig {
            mode: HostMode::Executor { workers: 2 },
            mailbox: 8,
            latency: LatencyModel::Zero,
        };
        let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
        host.sever_link(NodeId(1), NodeId(2)).unwrap();
        host.inject(NodeId(0), &1, 0);
        host.wait_quiescent();
        let ledger = host.ledger();
        assert_eq!(ledger.dropped_severed, 1, "n1's forward died at the radio");
        assert_eq!(
            ledger.scheduled,
            ledger.handled + ledger.dropped_to_downed + ledger.dropped_severed,
            "conservation with radio deaths accounted"
        );
        host.heal_link(NodeId(1), NodeId(2), 0).unwrap();
        host.inject(NodeId(0), &2, 0);
        host.wait_quiescent();
        let after = host.ledger();
        assert_eq!(after.dropped_severed, 1, "no new radio deaths after heal");
        assert_eq!(
            after.scheduled,
            after.handled + after.dropped_to_downed + after.dropped_severed
        );
        let (stats, _) = host.shutdown();
        // flood 1: n0→n1 delivered, n1→n2 charged then cut; flood 2: both hops
        assert_eq!(stats.adv_msgs(), 4);
    }

    #[test]
    fn probe_liveness_confirms_only_unanimous_suspicion_and_readmits() {
        let topo = builders::line(3);
        let config = HostConfig {
            mode: HostMode::Executor { workers: 2 },
            mailbox: 8,
            latency: LatencyModel::Zero,
        };
        let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
        host.set_liveness(10, 25); // threshold: 3 missed rounds
        host.liveness_tick();
        assert!(host.suspicions().is_empty(), "healthy links never suspect");
        // partition n1|n2: both sides suspect across the cut, but only n2
        // (whose every live neighbor suspects it) is confirmed — n0 still
        // vouches for n1
        host.sever_link(NodeId(1), NodeId(2)).unwrap();
        for _ in 0..3 {
            host.liveness_tick();
        }
        assert_eq!(
            host.suspicions(),
            vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(1))]
        );
        assert_eq!(host.take_confirmed_dead(), vec![NodeId(2)]);
        // the heal's successful probe clears suspicion and re-admits the
        // falsely confirmed node
        host.heal_link(NodeId(1), NodeId(2), 0).unwrap();
        host.liveness_tick();
        assert!(host.suspicions().is_empty());
        assert!(host.take_confirmed_dead().is_empty());
        // a real crash is re-confirmable after the re-admission
        host.crash_and_regraft(NodeId(2), NodeId(1), 0).unwrap();
        for _ in 0..3 {
            host.liveness_tick();
        }
        assert_eq!(host.take_confirmed_dead(), vec![NodeId(2)]);
    }

    #[test]
    fn latency_timestamps_advance_the_logical_clock() {
        let topo = builders::line(3);
        let config = HostConfig {
            mode: HostMode::Executor { workers: 2 },
            mailbox: 8,
            latency: LatencyModel::Uniform { hop: 5 },
        };
        let host = NodeHost::spawn(&topo, &config, |_, _| Flood::default());
        host.inject(NodeId(0), &1, 100);
        host.wait_quiescent();
        // two hops away, the packet carries 100 + 2·5
        assert_eq!(host.clock(), 110);
    }
}
