//! Binary wire encoding for the data-plane message payloads.
//!
//! The threaded runtime's channels stand in for sockets; this codec is what
//! a real deployment would put on them. Fixed-width big-endian fields, no
//! self-description — both ends share the schema, as they would in the
//! paper's homogeneous middleware.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fsf_model::{Advertisement, AttrId, Event, EventId, Point, SensorId, Timestamp};

/// Encoded size of an [`Event`] in bytes.
pub const EVENT_WIRE_SIZE: usize = 8 + 4 + 2 + 8 + 8 + 8 + 8;

/// Encoded size of an [`Advertisement`] in bytes.
pub const ADV_WIRE_SIZE: usize = 4 + 2 + 8 + 8;

/// Append an event's wire form to `buf`.
pub fn encode_event(e: &Event, buf: &mut BytesMut) {
    buf.reserve(EVENT_WIRE_SIZE);
    buf.put_u64(e.id.0);
    buf.put_u32(e.sensor.0);
    buf.put_u16(e.attr.0);
    buf.put_f64(e.location.x);
    buf.put_f64(e.location.y);
    buf.put_f64(e.value);
    buf.put_u64(e.timestamp.0);
}

/// Decode one event; `None` if the buffer is too short.
pub fn decode_event(buf: &mut Bytes) -> Option<Event> {
    if buf.remaining() < EVENT_WIRE_SIZE {
        return None;
    }
    Some(Event {
        id: EventId(buf.get_u64()),
        sensor: SensorId(buf.get_u32()),
        attr: AttrId(buf.get_u16()),
        location: Point::new(buf.get_f64(), buf.get_f64()),
        value: buf.get_f64(),
        timestamp: Timestamp(buf.get_u64()),
    })
}

/// Append an advertisement's wire form to `buf`.
pub fn encode_advertisement(a: &Advertisement, buf: &mut BytesMut) {
    buf.reserve(ADV_WIRE_SIZE);
    buf.put_u32(a.sensor.0);
    buf.put_u16(a.attr.0);
    buf.put_f64(a.location.x);
    buf.put_f64(a.location.y);
}

/// Decode one advertisement; `None` if the buffer is too short.
pub fn decode_advertisement(buf: &mut Bytes) -> Option<Advertisement> {
    if buf.remaining() < ADV_WIRE_SIZE {
        return None;
    }
    Some(Advertisement {
        sensor: SensorId(buf.get_u32()),
        attr: AttrId(buf.get_u16()),
        location: Point::new(buf.get_f64(), buf.get_f64()),
    })
}

/// Encode a batch of events (length-prefixed), the payload of an
/// `Events(…)` link message.
#[must_use]
pub fn encode_event_batch(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + events.len() * EVENT_WIRE_SIZE);
    buf.put_u32(events.len() as u32);
    for e in events {
        encode_event(e, &mut buf);
    }
    buf.freeze()
}

/// Decode a batch encoded by [`encode_event_batch`].
#[must_use]
pub fn decode_event_batch(mut buf: Bytes) -> Option<Vec<Event>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_event(&mut buf)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> Event {
        Event {
            id: EventId(id),
            sensor: SensorId(7),
            attr: AttrId(3),
            location: Point::new(1.5, -2.5),
            value: 21.25,
            timestamp: Timestamp(123_456),
        }
    }

    #[test]
    fn event_roundtrip() {
        let e = ev(42);
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        assert_eq!(buf.len(), EVENT_WIRE_SIZE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_event(&mut bytes), Some(e));
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn advertisement_roundtrip() {
        let a = Advertisement {
            sensor: SensorId(9),
            attr: AttrId(1),
            location: Point::new(0.0, 4.25),
        };
        let mut buf = BytesMut::new();
        encode_advertisement(&a, &mut buf);
        assert_eq!(buf.len(), ADV_WIRE_SIZE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_advertisement(&mut bytes), Some(a));
    }

    #[test]
    fn batch_roundtrip() {
        let events: Vec<Event> = (0..5).map(ev).collect();
        let encoded = encode_event_batch(&events);
        assert_eq!(encoded.len(), 4 + 5 * EVENT_WIRE_SIZE);
        assert_eq!(decode_event_batch(encoded), Some(events));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let e = ev(1);
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        let mut short = buf.freeze().slice(..EVENT_WIRE_SIZE - 1);
        assert_eq!(decode_event(&mut short), None);

        let batch = encode_event_batch(&[e]);
        assert_eq!(decode_event_batch(batch.slice(..batch.len() - 2)), None);
        assert_eq!(decode_event_batch(Bytes::new()), None);
    }

    #[test]
    fn empty_batch_roundtrip() {
        assert_eq!(decode_event_batch(encode_event_batch(&[])), Some(vec![]));
    }
}
