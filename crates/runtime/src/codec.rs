//! Binary wire encoding for the data-plane message payloads.
//!
//! The threaded runtime's channels stand in for sockets; this codec is what
//! a real deployment would put on them. Fixed-width big-endian fields, no
//! self-description — both ends share the schema, as they would in the
//! paper's homogeneous middleware.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fsf_core::PubSubMsg;
use fsf_model::{
    Advertisement, AttrId, DimKey, DimSignature, Event, EventId, Operator, OperatorKey, Point,
    Rect, Region, SensorId, SubId, Subscription, SubscriptionKind, Timestamp, ValueRange,
};

/// A message type with a binary wire form, plus the per-link write-batching
/// hook the async host's send path uses.
///
/// Every link message of the async deployment passes through
/// [`WireMsg::to_frame`] on the sending side and [`WireMsg::from_frame`] on
/// the receiving side — the channels carry opaque byte frames, exactly as a
/// socket would.
pub trait WireMsg: Sized {
    /// Append this message's wire form to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decode one message, consuming its bytes; `None` on a short or
    /// malformed buffer.
    fn decode(buf: &mut Bytes) -> Option<Self>;

    /// Try to absorb `other` into `self` for per-link write batching
    /// (e.g. two adjacent `Events` frames bound for the same peer merge
    /// into one). Non-coalescible pairs hand `other` back unchanged; that
    /// is the default, so control messages never merge.
    ///
    /// # Errors
    /// Returns `other` untouched when the pair cannot merge.
    fn coalesce(&mut self, other: Self) -> Result<(), Self> {
        Err(other)
    }

    /// Encode into a standalone frame.
    #[must_use]
    fn to_frame(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode a frame produced by [`WireMsg::to_frame`]; `None` if the
    /// frame is malformed or has trailing garbage.
    #[must_use]
    fn from_frame(mut frame: Bytes) -> Option<Self> {
        let msg = Self::decode(&mut frame)?;
        if frame.remaining() > 0 {
            return None;
        }
        Some(msg)
    }
}

/// Encoded size of an [`Event`] in bytes.
pub const EVENT_WIRE_SIZE: usize = 8 + 4 + 2 + 8 + 8 + 8 + 8;

/// Encoded size of an [`Advertisement`] in bytes.
pub const ADV_WIRE_SIZE: usize = 4 + 2 + 8 + 8;

/// Append an event's wire form to `buf`.
pub fn encode_event(e: &Event, buf: &mut BytesMut) {
    buf.reserve(EVENT_WIRE_SIZE);
    buf.put_u64(e.id.0);
    buf.put_u32(e.sensor.0);
    buf.put_u16(e.attr.0);
    buf.put_f64(e.location.x);
    buf.put_f64(e.location.y);
    buf.put_f64(e.value);
    buf.put_u64(e.timestamp.0);
}

/// Decode one event; `None` if the buffer is too short.
pub fn decode_event(buf: &mut Bytes) -> Option<Event> {
    if buf.remaining() < EVENT_WIRE_SIZE {
        return None;
    }
    Some(Event {
        id: EventId(buf.get_u64()),
        sensor: SensorId(buf.get_u32()),
        attr: AttrId(buf.get_u16()),
        location: Point::new(buf.get_f64(), buf.get_f64()),
        value: buf.get_f64(),
        timestamp: Timestamp(buf.get_u64()),
    })
}

/// Append an advertisement's wire form to `buf`.
pub fn encode_advertisement(a: &Advertisement, buf: &mut BytesMut) {
    buf.reserve(ADV_WIRE_SIZE);
    buf.put_u32(a.sensor.0);
    buf.put_u16(a.attr.0);
    buf.put_f64(a.location.x);
    buf.put_f64(a.location.y);
}

/// Decode one advertisement; `None` if the buffer is too short.
pub fn decode_advertisement(buf: &mut Bytes) -> Option<Advertisement> {
    if buf.remaining() < ADV_WIRE_SIZE {
        return None;
    }
    Some(Advertisement {
        sensor: SensorId(buf.get_u32()),
        attr: AttrId(buf.get_u16()),
        location: Point::new(buf.get_f64(), buf.get_f64()),
    })
}

/// Encode a batch of events (length-prefixed), the payload of an
/// `Events(…)` link message.
#[must_use]
pub fn encode_event_batch(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + events.len() * EVENT_WIRE_SIZE);
    buf.put_u32(events.len() as u32);
    for e in events {
        encode_event(e, &mut buf);
    }
    buf.freeze()
}

/// Decode a batch encoded by [`encode_event_batch`].
#[must_use]
pub fn decode_event_batch(mut buf: Bytes) -> Option<Vec<Event>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_event(&mut buf)?);
    }
    Some(out)
}

/// Append a subscription dimension key (1 tag byte + the id).
pub fn encode_dim_key(key: &DimKey, buf: &mut BytesMut) {
    match key {
        DimKey::Sensor(d) => {
            buf.put_u8(0);
            buf.put_u32(d.0);
        }
        DimKey::Attr(a) => {
            buf.put_u8(1);
            buf.put_u16(a.0);
        }
    }
}

/// Decode one dimension key.
pub fn decode_dim_key(buf: &mut Bytes) -> Option<DimKey> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 if buf.remaining() >= 4 => Some(DimKey::Sensor(SensorId(buf.get_u32()))),
        1 if buf.remaining() >= 2 => Some(DimKey::Attr(AttrId(buf.get_u16()))),
        _ => None,
    }
}

/// Append a value range (min, max as `f64`).
pub fn encode_value_range(range: &ValueRange, buf: &mut BytesMut) {
    buf.put_f64(range.min());
    buf.put_f64(range.max());
}

/// Decode one value range.
pub fn decode_value_range(buf: &mut Bytes) -> Option<ValueRange> {
    if buf.remaining() < 16 {
        return None;
    }
    let (min, max) = (buf.get_f64(), buf.get_f64());
    ValueRange::try_new(min, max).ok()
}

/// Append a region (1 tag byte + its geometry).
pub fn encode_region(region: &Region, buf: &mut BytesMut) {
    match region {
        Region::All => buf.put_u8(0),
        Region::Rect(r) => {
            buf.put_u8(1);
            buf.put_f64(r.min.x);
            buf.put_f64(r.min.y);
            buf.put_f64(r.max.x);
            buf.put_f64(r.max.y);
        }
        Region::Circle { center, radius } => {
            buf.put_u8(2);
            buf.put_f64(center.x);
            buf.put_f64(center.y);
            buf.put_f64(*radius);
        }
    }
}

/// Decode one region.
pub fn decode_region(buf: &mut Bytes) -> Option<Region> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => Some(Region::All),
        1 if buf.remaining() >= 32 => {
            let min = Point::new(buf.get_f64(), buf.get_f64());
            let max = Point::new(buf.get_f64(), buf.get_f64());
            if min.x.is_finite() && min.y.is_finite() && min.x <= max.x && min.y <= max.y {
                Some(Region::Rect(Rect::new(min, max)))
            } else {
                None
            }
        }
        2 if buf.remaining() >= 24 => Some(Region::Circle {
            center: Point::new(buf.get_f64(), buf.get_f64()),
            radius: buf.get_f64(),
        }),
        _ => None,
    }
}

fn encode_opt_f64(v: Option<f64>, buf: &mut BytesMut) {
    match v {
        None => buf.put_u8(0),
        Some(x) => {
            buf.put_u8(1);
            buf.put_f64(x);
        }
    }
}

fn decode_opt_f64(buf: &mut Bytes) -> Option<Option<f64>> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => Some(None),
        1 if buf.remaining() >= 8 => Some(Some(buf.get_f64())),
        _ => None,
    }
}

/// The shared wire body of subscriptions and operators: `(id, kind,
/// predicates, region, δt, δl)`. Operators are projections of
/// subscriptions, so both sides reconstruct through the [`Subscription`]
/// constructors — the decode re-validates everything the constructors
/// validate.
fn encode_query_body(
    id: SubId,
    kind: SubscriptionKind,
    predicates: &[fsf_model::Predicate],
    region: &Region,
    delta_t: u64,
    delta_l: Option<f64>,
    buf: &mut BytesMut,
) {
    buf.put_u64(id.0);
    buf.put_u8(match kind {
        SubscriptionKind::Identified => 0,
        SubscriptionKind::Abstract => 1,
    });
    buf.put_u16(predicates.len() as u16);
    for p in predicates {
        encode_dim_key(&p.key, buf);
        encode_value_range(&p.range, buf);
    }
    encode_region(region, buf);
    buf.put_u64(delta_t);
    encode_opt_f64(delta_l, buf);
}

fn decode_query_body(buf: &mut Bytes) -> Option<Subscription> {
    if buf.remaining() < 11 {
        return None;
    }
    let id = SubId(buf.get_u64());
    let kind = buf.get_u8();
    let n = buf.get_u16() as usize;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let key = decode_dim_key(buf)?;
        let range = decode_value_range(buf)?;
        keys.push((key, range));
    }
    let region = decode_region(buf)?;
    if buf.remaining() < 8 {
        return None;
    }
    let delta_t = buf.get_u64();
    let delta_l = decode_opt_f64(buf)?;
    match kind {
        0 => {
            let filters: Option<Vec<(SensorId, ValueRange)>> = keys
                .into_iter()
                .map(|(k, r)| match k {
                    DimKey::Sensor(d) => Some((d, r)),
                    DimKey::Attr(_) => None,
                })
                .collect();
            Subscription::identified(id, filters?, delta_t).ok()
        }
        1 => {
            let filters: Option<Vec<(AttrId, ValueRange)>> = keys
                .into_iter()
                .map(|(k, r)| match k {
                    DimKey::Attr(a) => Some((a, r)),
                    DimKey::Sensor(_) => None,
                })
                .collect();
            Subscription::abstract_over(id, filters?, region, delta_t, delta_l).ok()
        }
        _ => None,
    }
}

/// Append a subscription's wire form.
pub fn encode_subscription(sub: &Subscription, buf: &mut BytesMut) {
    encode_query_body(
        sub.id(),
        sub.kind(),
        sub.predicates(),
        sub.region(),
        sub.delta_t(),
        sub.delta_l(),
        buf,
    );
}

/// Decode one subscription.
pub fn decode_subscription(buf: &mut Bytes) -> Option<Subscription> {
    decode_query_body(buf)
}

/// Append an operator's wire form (same body as a subscription — an
/// operator is a projection of one, and carries the identical fields).
pub fn encode_operator(op: &Operator, buf: &mut BytesMut) {
    encode_query_body(
        op.sub(),
        op.kind(),
        op.predicates(),
        op.region(),
        op.delta_t(),
        op.delta_l(),
        buf,
    );
}

/// Decode one operator.
pub fn decode_operator(buf: &mut Bytes) -> Option<Operator> {
    decode_query_body(buf).map(|sub| Operator::from_subscription(&sub))
}

/// Append an operator key (`subscription id` + dimension signature).
pub fn encode_operator_key(key: &OperatorKey, buf: &mut BytesMut) {
    buf.put_u64(key.sub.0);
    buf.put_u16(key.dims.dims().len() as u16);
    for d in key.dims.dims() {
        encode_dim_key(d, buf);
    }
}

/// Decode one operator key.
pub fn decode_operator_key(buf: &mut Bytes) -> Option<OperatorKey> {
    if buf.remaining() < 10 {
        return None;
    }
    let sub = SubId(buf.get_u64());
    let n = buf.get_u16() as usize;
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        dims.push(decode_dim_key(buf)?);
    }
    Some(OperatorKey {
        sub,
        dims: DimSignature::new(dims),
    })
}

/// Append a length-prefixed event vector (the body of an `Events` frame).
pub fn encode_events(events: &[Event], buf: &mut BytesMut) {
    buf.put_u32(events.len() as u32);
    for e in events {
        encode_event(e, buf);
    }
}

/// Decode a length-prefixed event vector.
pub fn decode_events(buf: &mut Bytes) -> Option<Vec<Event>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(decode_event(buf)?);
    }
    Some(out)
}

impl WireMsg for PubSubMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PubSubMsg::SensorUp(a) => {
                buf.put_u8(0);
                encode_advertisement(a, buf);
            }
            PubSubMsg::Adv(a) => {
                buf.put_u8(1);
                encode_advertisement(a, buf);
            }
            PubSubMsg::SensorDown(d) => {
                buf.put_u8(2);
                buf.put_u32(d.0);
            }
            PubSubMsg::AdvDown(d, gen) => {
                buf.put_u8(3);
                buf.put_u32(d.0);
                buf.put_u64(*gen);
            }
            PubSubMsg::AdvRepair(a, gen) => {
                buf.put_u8(4);
                encode_advertisement(a, buf);
                buf.put_u64(*gen);
            }
            PubSubMsg::Move(a, gen) => {
                buf.put_u8(5);
                encode_advertisement(a, buf);
                buf.put_u64(*gen);
            }
            PubSubMsg::Subscribe(s) => {
                buf.put_u8(6);
                encode_subscription(s, buf);
            }
            PubSubMsg::Operator(op) => {
                buf.put_u8(7);
                encode_operator(op, buf);
            }
            PubSubMsg::Unsubscribe(s) => {
                buf.put_u8(8);
                buf.put_u64(s.0);
            }
            PubSubMsg::RemoveOperator(k) => {
                buf.put_u8(9);
                encode_operator_key(k, buf);
            }
            PubSubMsg::Publish(e) => {
                buf.put_u8(10);
                encode_event(e, buf);
            }
            PubSubMsg::Events(es) => {
                buf.put_u8(11);
                encode_events(es, buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        Some(match buf.get_u8() {
            0 => PubSubMsg::SensorUp(decode_advertisement(buf)?),
            1 => PubSubMsg::Adv(decode_advertisement(buf)?),
            2 => {
                if buf.remaining() < 4 {
                    return None;
                }
                PubSubMsg::SensorDown(SensorId(buf.get_u32()))
            }
            3 => {
                if buf.remaining() < 12 {
                    return None;
                }
                PubSubMsg::AdvDown(SensorId(buf.get_u32()), buf.get_u64())
            }
            4 => {
                let a = decode_advertisement(buf)?;
                if buf.remaining() < 8 {
                    return None;
                }
                PubSubMsg::AdvRepair(a, buf.get_u64())
            }
            5 => {
                let a = decode_advertisement(buf)?;
                if buf.remaining() < 8 {
                    return None;
                }
                PubSubMsg::Move(a, buf.get_u64())
            }
            6 => PubSubMsg::Subscribe(decode_subscription(buf)?),
            7 => PubSubMsg::Operator(decode_operator(buf)?),
            8 => {
                if buf.remaining() < 8 {
                    return None;
                }
                PubSubMsg::Unsubscribe(SubId(buf.get_u64()))
            }
            9 => PubSubMsg::RemoveOperator(decode_operator_key(buf)?),
            10 => PubSubMsg::Publish(decode_event(buf)?),
            11 => PubSubMsg::Events(decode_events(buf)?),
            _ => return None,
        })
    }

    fn coalesce(&mut self, other: Self) -> Result<(), Self> {
        match (self, other) {
            (PubSubMsg::Events(mine), PubSubMsg::Events(more)) => {
                mine.extend(more);
                Ok(())
            }
            (_, other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> Event {
        Event {
            id: EventId(id),
            sensor: SensorId(7),
            attr: AttrId(3),
            location: Point::new(1.5, -2.5),
            value: 21.25,
            timestamp: Timestamp(123_456),
        }
    }

    #[test]
    fn event_roundtrip() {
        let e = ev(42);
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        assert_eq!(buf.len(), EVENT_WIRE_SIZE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_event(&mut bytes), Some(e));
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn advertisement_roundtrip() {
        let a = Advertisement {
            sensor: SensorId(9),
            attr: AttrId(1),
            location: Point::new(0.0, 4.25),
        };
        let mut buf = BytesMut::new();
        encode_advertisement(&a, &mut buf);
        assert_eq!(buf.len(), ADV_WIRE_SIZE);
        let mut bytes = buf.freeze();
        assert_eq!(decode_advertisement(&mut bytes), Some(a));
    }

    #[test]
    fn batch_roundtrip() {
        let events: Vec<Event> = (0..5).map(ev).collect();
        let encoded = encode_event_batch(&events);
        assert_eq!(encoded.len(), 4 + 5 * EVENT_WIRE_SIZE);
        assert_eq!(decode_event_batch(encoded), Some(events));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let e = ev(1);
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        let mut short = buf.freeze().slice(..EVENT_WIRE_SIZE - 1);
        assert_eq!(decode_event(&mut short), None);

        let batch = encode_event_batch(&[e]);
        assert_eq!(decode_event_batch(batch.slice(..batch.len() - 2)), None);
        assert_eq!(decode_event_batch(Bytes::new()), None);
    }

    #[test]
    fn empty_batch_roundtrip() {
        assert_eq!(decode_event_batch(encode_event_batch(&[])), Some(vec![]));
    }
}
