//! # fsf-runtime
//!
//! Genuinely concurrent execution of the engines: **one OS thread per
//! processing node**, crossbeam channels as links.
//!
//! The paper ran each node as a JVM on its own Xen VM; the deterministic
//! simulator in `fsf-network` reproduces the *metrics*, and this crate
//! reproduces the *execution model* — every [`fsf_network::NodeBehavior`]
//! implementation (Filter-Split-Forward, the baselines, or your own) runs
//! unmodified on real threads, with per-link message passing and no shared
//! node state. Integration tests verify that the threaded execution and the
//! simulator produce identical deliveries and traffic.
//!
//! [`codec`] provides a compact binary wire encoding for events and
//! advertisements (what a real deployment would put on the sockets the
//! channels stand in for).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod net;

pub use net::ThreadedNet;
