//! # fsf-runtime
//!
//! Genuinely concurrent execution of the engines: **one OS thread per
//! processing node**, crossbeam channels as links.
//!
//! The paper ran each node as a JVM on its own Xen VM; the deterministic
//! simulator in `fsf-network` reproduces the *metrics*, and this crate
//! reproduces the *execution model* — every [`fsf_network::NodeBehavior`]
//! implementation (Filter-Split-Forward, the baselines, or your own) runs
//! unmodified on real threads, with per-link message passing and no shared
//! node state. Integration tests verify that the threaded execution and the
//! simulator produce identical deliveries and traffic.
//!
//! Two execution substrates are provided:
//!
//! * [`net::ThreadedNet`] — the legacy one-OS-thread-per-node harness with
//!   unbounded channels (kept as a reference implementation);
//! * [`host::NodeHost`] — the production host: nodes as **async tasks** on
//!   the vendored `miniloop` executor (or dedicated threads), **bounded
//!   mailboxes** with park-don't-drop backpressure, the binary wire codec
//!   on every link, per-link write batching, virtual-latency timestamps,
//!   and churn support (crash/regraft/recover). A conservation ledger
//!   (`scheduled == handled + dropped_to_downed`) reconciles at
//!   quiescence.
//!
//! [`codec`] provides the compact binary wire encoding ([`codec::WireMsg`])
//! for events, advertisements, subscriptions, operators, and the engines'
//! full message enums (what a real deployment would put on the sockets the
//! channels stand in for).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod host;
pub mod net;

pub use codec::WireMsg;
pub use host::{HostConfig, HostLedger, HostMode, NodeHost};
pub use net::ThreadedNet;
