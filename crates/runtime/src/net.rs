//! The threaded network executor.

use crossbeam::channel::{unbounded, Receiver, Sender};
use fsf_network::{Ctx, DeliveryLog, NodeBehavior, NodeId, Topology, TrafficStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Packet<M> {
    Msg { from: NodeId, msg: M },
    Stop,
}

/// Both ends of one node's inbound channel.
type Link<M> = (Sender<Packet<M>>, Receiver<Packet<M>>);

struct Shared {
    stats: Mutex<TrafficStats>,
    deliveries: Mutex<DeliveryLog>,
    /// Messages injected or sent but not yet fully processed. Zero means
    /// the network is quiescent.
    pending: AtomicI64,
}

/// A network of node threads executing a [`NodeBehavior`].
///
/// Each node runs on its own OS thread; links are unbounded channels.
/// Traffic charges and end-user deliveries fold into shared, lock-protected
/// aggregates (the lock stands in for the measurement collector the paper's
/// testbed would have).
pub struct ThreadedNet<M: Send + 'static> {
    senders: Vec<Sender<Packet<M>>>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl<M: Send + 'static> ThreadedNet<M> {
    /// Spawn one thread per topology node. `make_node` builds each node's
    /// behaviour (it runs on the spawning thread).
    #[must_use]
    pub fn spawn<B>(topology: &Topology, mut make_node: impl FnMut(NodeId, &Topology) -> B) -> Self
    where
        B: NodeBehavior<Msg = M> + Send + 'static,
    {
        let shared = Arc::new(Shared {
            stats: Mutex::new(TrafficStats::new()),
            deliveries: Mutex::new(DeliveryLog::new()),
            pending: AtomicI64::new(0),
        });
        let channels: Vec<Link<M>> = (0..topology.len()).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Packet<M>>> = channels.iter().map(|(s, _)| s.clone()).collect();

        let mut handles = Vec::with_capacity(topology.len());
        for (idx, (_, rx)) in channels.into_iter().enumerate() {
            let id = NodeId(idx as u32);
            let mut node = make_node(id, topology);
            let neighbors = topology.neighbors(id).to_vec();
            let senders = senders.clone();
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                node_loop(id, &neighbors, &mut node, &rx, &senders, &shared);
            }));
        }
        ThreadedNet {
            senders,
            shared,
            handles,
        }
    }

    /// Inject a local item at `node` (the node sees `from == node`).
    pub fn inject(&self, node: NodeId, msg: M) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.senders[node.0 as usize]
            .send(Packet::Msg { from: node, msg })
            .expect("node thread alive");
    }

    /// Block until no message is queued or being processed anywhere.
    pub fn wait_quiescent(&self) {
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Snapshot of the accumulated traffic counters.
    #[must_use]
    pub fn stats(&self) -> TrafficStats {
        self.shared.stats.lock().clone()
    }

    /// Snapshot of the accumulated deliveries.
    #[must_use]
    pub fn deliveries(&self) -> DeliveryLog {
        self.shared.deliveries.lock().clone()
    }

    /// Stop all node threads and return the final aggregates.
    pub fn shutdown(mut self) -> (TrafficStats, DeliveryLog) {
        self.wait_quiescent();
        for s in &self.senders {
            let _ = s.send(Packet::Stop);
        }
        for h in self.handles.drain(..) {
            h.join().expect("node thread panicked");
        }
        let stats = self.shared.stats.lock().clone();
        let deliveries = self.shared.deliveries.lock().clone();
        (stats, deliveries)
    }
}

fn node_loop<B: NodeBehavior>(
    id: NodeId,
    neighbors: &[NodeId],
    node: &mut B,
    rx: &Receiver<Packet<B::Msg>>,
    senders: &[Sender<Packet<B::Msg>>],
    shared: &Shared,
) {
    let mut outbox = Vec::new();
    let mut local_deliveries = DeliveryLog::new();
    while let Ok(pkt) = rx.recv() {
        match pkt {
            Packet::Stop => break,
            Packet::Msg { from, msg } => {
                {
                    // the threaded executor runs on wall clock, not virtual
                    // time — behaviours see a frozen clock at tick 0
                    let mut ctx =
                        Ctx::external(id, neighbors, 0, &mut outbox, &mut local_deliveries);
                    node.on_message(from, msg, &mut ctx);
                }
                if local_deliveries.complex_deliveries() > 0 {
                    shared.deliveries.lock().merge(&mut local_deliveries);
                    local_deliveries = DeliveryLog::new();
                }
                if !outbox.is_empty() {
                    let mut stats = shared.stats.lock();
                    for (to, msg, kind, units) in outbox.drain(..) {
                        stats.charge(kind, id, to, units);
                        shared.pending.fetch_add(1, Ordering::SeqCst);
                        senders[to.0 as usize]
                            .send(Packet::Msg { from: id, msg })
                            .expect("peer thread alive");
                    }
                }
                // processed: decrement after our sends were registered, so
                // the pending count can never dip to zero early
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_network::{builders, ChargeKind};

    /// Flooding behaviour (mirrors the simulator's test double).
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            let me = ctx.node();
            for n in ctx.neighbors().to_vec() {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    #[test]
    fn threaded_flood_matches_simulator_traffic() {
        let topo = builders::balanced(31, 2);
        let net = ThreadedNet::spawn(&topo, |_, _| Flood::default());
        net.inject(NodeId(0), 7);
        net.wait_quiescent();
        net.inject(NodeId(30), 8);
        net.wait_quiescent();
        let (stats, _) = net.shutdown();
        assert_eq!(
            stats.adv_msgs(),
            2 * 30,
            "each flood crosses every link once"
        );
    }

    #[test]
    fn concurrent_floods_all_arrive() {
        let topo = builders::balanced(15, 2);
        let net = ThreadedNet::spawn(&topo, |_, _| Flood::default());
        for i in 0..50u64 {
            net.inject(NodeId((i % 15) as u32), 1000 + i);
        }
        net.wait_quiescent();
        let (stats, _) = net.shutdown();
        assert_eq!(stats.adv_msgs(), 50 * 14);
    }

    #[test]
    fn shutdown_is_idempotent_on_quiescent_network() {
        let topo = builders::line(3);
        let net = ThreadedNet::spawn(&topo, |_, _| Flood::default());
        net.wait_quiescent(); // nothing injected
        let (stats, deliveries) = net.shutdown();
        assert_eq!(stats.adv_msgs(), 0);
        assert_eq!(deliveries.total_event_units(), 0);
    }
}
