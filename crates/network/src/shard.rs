//! Sharded conservative-parallel discrete-event simulation.
//!
//! The single-queue [`Simulator`] drains every message through one global
//! `BinaryHeap` on one thread — the hard ceiling on topology size. This
//! module partitions the tree into connected subtree **shards**, gives each
//! shard its own calendar queue, and advances shards concurrently under a
//! classic Chandy–Misra conservative protocol:
//!
//! * **Lookahead rule.** Per round, each shard `s` exposes the timestamp of
//!   its earliest queued event (`head(s)`, ∞ if idle). A lower bound on
//!   anything shard `s` may still *emit toward* a neighbor is computed by
//!   relaxing `lb(s) = min(head(s), min over adjacent r of lb(r) + L(r,s))`
//!   to a fixpoint, where `L(r,s)` is the minimum latency of any link
//!   crossing between the two shards. Shard `s` may then safely process
//!   every event strictly below `cap(s) = min over adjacent r of
//!   lb(r) + L(r,s)` — no message can arrive into `s` earlier than that.
//!   This is the null-message bound computed centrally per round instead of
//!   being gossiped: with every link costing ≥ 1 tick, the shard holding
//!   the globally earliest event always has `cap > head`, so every round
//!   makes progress.
//! * **Determinism guarantee.** Within a shard, events are processed in
//!   `(deliver_at, origin_shard, seq)` order with a per-shard monotone
//!   `seq`; cross-shard handoffs are routed at the round barrier in shard-id
//!   order. The schedule is a pure function of the injection sequence, the
//!   topology, and the latency model — independent of thread timing — and
//!   the equality gate (`tests/sharded_equality.rs`) holds the resulting
//!   [`DeliveryLog`]s event-for-event identical to the single-queue
//!   simulator across the churn/mobility/recovery batteries.
//! * **Coalesced fallback.** Conservative windows require every link to
//!   cost at least one tick. When `LatencyModel::min_hop() == 0` (or one
//!   shard is requested, or the partitioner cannot cut the tree), the whole
//!   topology becomes a single shard and the calendar queue replays the
//!   exact `(deliver_at, seq)` order of the single-queue simulator.
//!
//! [`Backend`] wraps either simulator behind one API so the engine layer
//! can switch with [`Backend::set_shards`].

use crate::latency::{LatencyModel, LatencySummary};
use crate::sim::{Ctx, DeliveryLog, NodeBehavior, Simulator};
use crate::topology::{NodeId, RegraftDelta, Topology, TopologyError};
use crate::traffic::{ChargeKind, TrafficStats};
use fsf_model::EventId;
use fsf_telemetry::{flood_id, Noop, TelemetryEvent, TelemetrySink, TrafficClass};
use std::collections::{BTreeMap, BTreeSet};

/// A partition of a topology's nodes into connected subtree shards.
///
/// Built by carving maximal subtrees of at least `⅞·n/k` nodes off a BFS
/// tree rooted at node 0, deepest-first, until `k − 1` shards are cut; the
/// remainder (always containing the root) becomes the last shard. On
/// degenerate shapes (stars) fewer effective shards than requested may
/// result — the plan reports the effective count.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    assignment: Vec<u32>,
    shards: usize,
}

impl ShardPlan {
    /// Everything in one shard (the coalesced mode).
    #[must_use]
    pub fn single(n: usize) -> Self {
        ShardPlan {
            assignment: vec![0; n],
            shards: 1,
        }
    }

    /// Carve `shards` connected subtree shards out of `topology`.
    /// Deterministic: a pure function of the topology and the requested
    /// count.
    #[must_use]
    pub fn partition(topology: &Topology, shards: usize) -> Self {
        let n = topology.len();
        if shards <= 1 || n <= 1 {
            return Self::single(n);
        }
        let root = NodeId(0);
        let order = topology.bfs_order(root);
        let parents = topology.parents_toward(root);
        let mut size = vec![1u64; n];
        for &v in order.iter().rev() {
            if let Some(p) = parents[v.0 as usize] {
                size[p.0 as usize] += size[v.0 as usize];
            }
        }
        // Threshold at ⅞ of an even split: tolerates the off-by-a-few
        // subtree sizes of balanced trees (an exact n/k threshold misses a
        // root child of size n/k − 1 and collapses to one shard).
        let target = 1.max(7 * n as u64 / (8 * shards as u64));
        const UNASSIGNED: u32 = u32::MAX;
        let mut assignment = vec![UNASSIGNED; n];
        let mut next_shard = 0u32;
        let mut stack = Vec::new();
        for &v in order.iter().rev() {
            if next_shard as usize >= shards - 1 {
                break;
            }
            if v == root || size[v.0 as usize] < target {
                continue;
            }
            // carve the residual subtree under v
            let carved = size[v.0 as usize];
            stack.push(v);
            while let Some(u) = stack.pop() {
                assignment[u.0 as usize] = next_shard;
                for &w in topology.neighbors(u) {
                    if parents[w.0 as usize] == Some(u) && assignment[w.0 as usize] == UNASSIGNED {
                        stack.push(w);
                    }
                }
            }
            size[v.0 as usize] = 0;
            let mut a = parents[v.0 as usize];
            while let Some(p) = a {
                size[p.0 as usize] -= carved;
                a = parents[p.0 as usize];
            }
            next_shard += 1;
        }
        for slot in &mut assignment {
            if *slot == UNASSIGNED {
                *slot = next_shard;
            }
        }
        ShardPlan {
            assignment,
            shards: next_shard as usize + 1,
        }
    }

    /// Effective number of shards (≤ the requested count).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Which shard a node lives in.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.0 as usize] as usize
    }

    /// Node count per shard.
    #[must_use]
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

/// One scheduled envelope in a shard calendar. Ordered within a tick bucket
/// by `(origin, seq)` — the deterministic cross-shard merge key.
#[derive(Debug, Clone)]
struct Entry<M> {
    origin: u32,
    seq: u64,
    from: NodeId,
    to: NodeId,
    /// Causality id (see [`fsf_telemetry::flood_id`]): minted at injection,
    /// inherited by every downstream send.
    flood: u64,
    msg: M,
}

/// Per-shard state: the nodes it owns, its calendar queue, and its private
/// counters (drained into the merged totals after every pump).
#[derive(Debug)]
struct ShardState<B: NodeBehavior, S: TelemetrySink> {
    id: usize,
    sink: S,
    nodes: Vec<B>,
    /// Calendar queue: tick → bucket of entries. Buckets are sorted by
    /// `(origin, seq)` at drain time; same-tick sends made while draining
    /// land in a fresh bucket picked up by the next loop iteration, which
    /// preserves seq order (new seqs are always larger).
    calendar: BTreeMap<u64, Vec<Entry<B::Msg>>>,
    queued: usize,
    next_seq: u64,
    scheduled_total: u64,
    steps: u64,
    queue_drops: u64,
    dropped_to_downed: u64,
    dropped_severed: u64,
    /// Highest tick this shard has processed (drops included).
    last_tick: u64,
    stats: TrafficStats,
    deliveries: DeliveryLog,
    /// Cross-shard sends produced this round: `(deliver_at, dest_shard,
    /// entry)`, routed at the round barrier in shard-id order.
    outgoing: Vec<(u64, usize, Entry<B::Msg>)>,
}

impl<B: NodeBehavior, S: TelemetrySink> ShardState<B, S> {
    fn new(id: usize, sink: S) -> Self {
        ShardState {
            id,
            sink,
            nodes: Vec::new(),
            calendar: BTreeMap::new(),
            queued: 0,
            next_seq: 0,
            scheduled_total: 0,
            steps: 0,
            queue_drops: 0,
            dropped_to_downed: 0,
            dropped_severed: 0,
            last_tick: 0,
            stats: TrafficStats::new(),
            deliveries: DeliveryLog::new(),
            outgoing: Vec::new(),
        }
    }

    fn head(&self) -> Option<u64> {
        self.calendar.first_key_value().map(|(&t, _)| t)
    }

    fn push(&mut self, at: u64, entry: Entry<B::Msg>) {
        self.calendar.entry(at).or_default().push(entry);
        self.queued += 1;
    }

    /// Process every queued event strictly below `cap`, in
    /// `(deliver_at, origin, seq)` order. Returns `(handled, popped)`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        cap: u64,
        budget: u64,
        topology: &Topology,
        latency: &LatencyModel,
        plan: &ShardPlan,
        node_slot: &[u32],
        down: &BTreeSet<NodeId>,
    ) -> (u64, u64) {
        let mut handled = 0u64;
        let mut popped = 0u64;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        while let Some(t) = self.head() {
            if t >= cap {
                break;
            }
            let mut bucket = self.calendar.remove(&t).expect("peeked head");
            self.queued -= bucket.len();
            bucket.sort_by_key(|e| (e.origin, e.seq));
            self.last_tick = t;
            for entry in bucket {
                popped += 1;
                if popped > budget {
                    let mut msg = format!(
                        "simulator exceeded {} steps at virtual time {} with {} messages \
                         queued — forwarding loop? (shard {})",
                        budget, t, self.queued, self.id
                    );
                    if S::ENABLED {
                        for ev in self.sink.recent(10) {
                            msg.push_str(&format!("\n    {ev:?}"));
                        }
                    }
                    panic!("{msg}");
                }
                if down.contains(&entry.to) {
                    self.queue_drops += 1;
                    self.dropped_to_downed += 1;
                    if S::ENABLED {
                        self.sink.record(TelemetryEvent::DroppedDowned {
                            at: t,
                            to: entry.to.0,
                            shard: self.id as u32,
                            flood: entry.flood,
                        });
                    }
                    continue;
                }
                handled += 1;
                let slot = node_slot[entry.to.0 as usize] as usize;
                let deliveries_before = self.deliveries.complex_deliveries();
                {
                    let mut ctx = Ctx::external(
                        entry.to,
                        topology.neighbors(entry.to),
                        t,
                        &mut outbox,
                        &mut self.deliveries,
                    );
                    self.nodes[slot].on_message(entry.from, entry.msg, &mut ctx);
                }
                if S::ENABLED {
                    self.sink.record(TelemetryEvent::Handled {
                        at: t,
                        from: entry.from.0,
                        to: entry.to.0,
                        shard: self.id as u32,
                        flood: entry.flood,
                        deliveries: self.deliveries.complex_deliveries() - deliveries_before,
                    });
                }
                for (to, msg, kind, units) in outbox.drain(..) {
                    self.stats.charge(kind, entry.to, to, units);
                    let at = t + latency.delay(entry.to, to);
                    let e = Entry {
                        origin: self.id as u32,
                        seq: self.next_seq,
                        from: entry.to,
                        to,
                        flood: entry.flood,
                        msg,
                    };
                    self.next_seq += 1;
                    self.scheduled_total += 1;
                    let dest = plan.shard_of(to);
                    if S::ENABLED {
                        self.sink.record(TelemetryEvent::Scheduled {
                            at: t,
                            deliver_at: at,
                            from: entry.to.0,
                            to: to.0,
                            shard: dest as u32,
                            flood: entry.flood,
                            class: kind.traffic_class(),
                            units,
                        });
                    }
                    // Severed links drop at the sender's radio, at schedule
                    // time — same rule as the single simulator, so the drop
                    // decision never depends on when a shard pops the entry.
                    if entry.to != to && topology.is_severed(entry.to, to) {
                        self.queue_drops += 1;
                        self.dropped_severed += 1;
                        if S::ENABLED {
                            self.sink.record(TelemetryEvent::DroppedSevered {
                                at: t,
                                from: entry.to.0,
                                to: to.0,
                                shard: self.id as u32,
                                flood: entry.flood,
                            });
                        }
                        continue;
                    }
                    if dest == self.id {
                        self.push(at, e);
                    } else {
                        self.outgoing.push((at, dest, e));
                    }
                }
            }
        }
        self.steps += handled;
        (handled, popped)
    }
}

/// Sharded conservative-parallel counterpart of [`Simulator`]: the same
/// deterministic semantics, executed over per-subtree calendar queues that
/// advance concurrently within conservative lookahead windows. See the
/// module docs for the protocol.
#[derive(Debug)]
pub struct ShardedSimulator<B: NodeBehavior + Send, S: TelemetrySink = Noop>
where
    B::Msg: Send,
{
    topology: Topology,
    latency: LatencyModel,
    plan: ShardPlan,
    /// Global node id → index within its shard's `nodes` vector.
    node_slot: Vec<u32>,
    shards: Vec<ShardState<B, S>>,
    sink: S,
    /// Completed conservative rounds (the `round` stamp of
    /// [`TelemetryEvent::ShardRound`] profiles).
    rounds: u64,
    /// Shard adjacency with the minimum latency of any crossing link —
    /// the `L(r,s)` of the lookahead rule. Rebuilt on regraft.
    shard_graph: Vec<Vec<(usize, u64)>>,
    merged_stats: TrafficStats,
    merged_deliveries: DeliveryLog,
    now: u64,
    max_steps_per_run: u64,
    down: BTreeSet<NodeId>,
    /// Injections swallowed at downed nodes (per-shard drops are counted
    /// in the shard states).
    injection_drops: u64,
    workers: usize,
}

impl<B: NodeBehavior + Send> ShardedSimulator<B>
where
    B::Msg: Send,
{
    /// Build with an explicit latency model, partitioning into (at most)
    /// `shards` subtree shards. Zero-capable latency models force the
    /// coalesced single-shard plan (see the module docs).
    pub fn with_latency(
        topology: Topology,
        latency: LatencyModel,
        shards: usize,
        make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        Self::with_sink(topology, latency, Noop, shards, make_node)
    }
}

impl<B: NodeBehavior + Send, S: TelemetrySink> ShardedSimulator<B, S>
where
    B::Msg: Send,
{
    /// Build with an explicit latency model and telemetry sink (see
    /// [`Self::with_latency`]). Every shard records into a clone of `sink`;
    /// a [`fsf_telemetry::Recorder`] shares one store across clones.
    pub fn with_sink(
        topology: Topology,
        latency: LatencyModel,
        sink: S,
        shards: usize,
        mut make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        let plan = if latency.min_hop() == 0 {
            ShardPlan::single(topology.len())
        } else {
            ShardPlan::partition(&topology, shards)
        };
        let nodes = topology
            .nodes()
            .map(|id| make_node(id, &topology))
            .collect();
        Self::from_parts(topology, latency, plan, nodes, sink)
    }

    /// Assemble from prebuilt nodes in topology-id order (backend
    /// switching).
    pub(crate) fn from_parts(
        topology: Topology,
        latency: LatencyModel,
        plan: ShardPlan,
        nodes: Vec<B>,
        sink: S,
    ) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one node per topology id");
        let mut shards: Vec<ShardState<B, S>> = (0..plan.shards())
            .map(|id| ShardState::new(id, sink.clone()))
            .collect();
        let mut node_slot = vec![0u32; topology.len()];
        for (id, node) in nodes.into_iter().enumerate() {
            let s = plan.shard_of(NodeId(id as u32));
            node_slot[id] = shards[s].nodes.len() as u32;
            shards[s].nodes.push(node);
        }
        let workers = Self::default_workers(plan.shards());
        let mut sim = ShardedSimulator {
            shard_graph: Vec::new(),
            topology,
            latency,
            plan,
            node_slot,
            shards,
            sink,
            rounds: 0,
            merged_stats: TrafficStats::new(),
            merged_deliveries: DeliveryLog::new(),
            now: 0,
            max_steps_per_run: Simulator::<B>::DEFAULT_MAX_STEPS,
            down: BTreeSet::new(),
            injection_drops: 0,
            workers,
        };
        sim.rebuild_shard_graph();
        sim
    }

    fn default_workers(shards: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        shards.min(cores)
    }

    /// The attached telemetry sink.
    pub(crate) fn sink(&self) -> &S {
        &self.sink
    }

    /// Tear apart for backend switching: nodes return in topology-id order.
    pub(crate) fn into_parts(self) -> (Topology, LatencyModel, Vec<B>, S) {
        let n = self.topology.len();
        let mut slots: Vec<Option<B>> = (0..n).map(|_| None).collect();
        for (s, shard) in self.shards.into_iter().enumerate() {
            let mut nodes = shard.nodes.into_iter();
            for (id, slot) in slots.iter_mut().enumerate() {
                if self.plan.assignment[id] as usize == s {
                    *slot = nodes.next();
                }
            }
        }
        let nodes = slots
            .into_iter()
            .map(|n| n.expect("every id assigned to exactly one shard"))
            .collect();
        (self.topology, self.latency, nodes, self.sink)
    }

    fn rebuild_shard_graph(&mut self) {
        let s = self.plan.shards();
        let mut min_link: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for u in self.topology.nodes() {
            let su = self.plan.shard_of(u);
            for &v in self.topology.neighbors(u) {
                if v <= u {
                    continue;
                }
                // a severed link carries no messages, so it must not lower
                // the conservative lookahead bound (and a heal must widen
                // it again — callers rebuild after every mutation)
                if self.topology.is_severed(u, v) {
                    continue;
                }
                let sv = self.plan.shard_of(v);
                if su == sv {
                    continue;
                }
                let d = self.latency.delay(u, v);
                let key = (su.min(sv), su.max(sv));
                min_link
                    .entry(key)
                    .and_modify(|cur| *cur = (*cur).min(d))
                    .or_insert(d);
            }
        }
        let mut graph = vec![Vec::new(); s];
        for (&(a, b), &d) in &min_link {
            graph[a].push((b, d));
            graph[b].push((a, d));
        }
        self.shard_graph = graph;
    }

    /// Per-round conservative caps: `cap(s) = min over adjacent r of
    /// lb(r) + L(r,s)`, with `lb` the relaxed earliest-emission bounds (see
    /// the module docs), clamped to `horizon + 1`. The second element of
    /// each pair is the cap's provenance: `true` when a neighbor's bound is
    /// the binding constraint (rather than the horizon clamp or an
    /// unconstrained `u64::MAX`) — the profiling signal for how often the
    /// conservative window, not the workload, limits a shard's round.
    fn round_caps(&self, heads: &[Option<u64>], horizon: Option<u64>) -> Vec<(u64, bool)> {
        let s = self.shards.len();
        let mut lb: Vec<u64> = heads.iter().map(|h| h.unwrap_or(u64::MAX)).collect();
        loop {
            let mut changed = false;
            for a in 0..s {
                if lb[a] == u64::MAX {
                    continue;
                }
                for &(b, l) in &self.shard_graph[a] {
                    let cand = lb[a].saturating_add(l);
                    if cand < lb[b] {
                        lb[b] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (0..s)
            .map(|a| {
                let neighbor_cap = self.shard_graph[a]
                    .iter()
                    .map(|&(b, l)| lb[b].saturating_add(l))
                    .min()
                    .unwrap_or(u64::MAX);
                let mut cap = neighbor_cap;
                let mut by_neighbor = neighbor_cap != u64::MAX;
                if let Some(t) = horizon {
                    let h = t.saturating_add(1);
                    if h <= cap {
                        cap = h;
                        by_neighbor = false;
                    }
                }
                (cap, by_neighbor)
            })
            .collect()
    }

    /// Override the worker-thread count (defaults to
    /// `min(shards, available cores)`; 1 runs shards inline on the calling
    /// thread, which is fastest on single-core hosts).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Override the runaway-protection step budget.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps_per_run = max;
    }

    /// The active shard plan.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state.
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &B {
        let n = self.topology.len();
        if id.0 as usize >= n {
            panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})");
        }
        &self.shards[self.plan.shard_of(id)].nodes[self.node_slot[id.0 as usize] as usize]
    }

    /// Mutable access to a node's state.
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        let n = self.topology.len();
        if id.0 as usize >= n {
            panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})");
        }
        &mut self.shards[self.plan.shard_of(id)].nodes[self.node_slot[id.0 as usize] as usize]
    }

    /// Is the node marked down (crashed)?
    #[must_use]
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down.contains(&id)
    }

    /// The virtual clock (see [`Simulator::now`]).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Messages currently scheduled but not yet delivered, over all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queued).sum()
    }

    /// Every envelope ever enqueued (see [`Simulator::scheduled_total`];
    /// the same conservation invariant holds per pause point).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.shards.iter().map(|s| s.scheduled_total).sum()
    }

    /// Enqueued messages dropped instead of processed.
    #[must_use]
    pub fn dropped_from_queue(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_drops).sum()
    }

    /// Messages dropped because their destination was down, injections
    /// included.
    #[must_use]
    pub fn dropped_to_downed(&self) -> u64 {
        self.injection_drops + self.shards.iter().map(|s| s.dropped_to_downed).sum::<u64>()
    }

    /// Messages dropped at the sender's radio because the link was severed.
    #[must_use]
    pub fn dropped_severed(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_severed).sum()
    }

    /// Sever the link between two adjacent nodes (see
    /// [`Simulator::sever_link`]). The shard lookahead graph is rebuilt
    /// immediately: a severed crossing link no longer bounds the
    /// conservative window.
    pub fn sever_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        self.topology.sever_link(a, b)?;
        if S::ENABLED {
            self.sink.record(TelemetryEvent::LinkSevered {
                at: self.now,
                a: a.0,
                b: b.0,
            });
        }
        self.rebuild_shard_graph();
        Ok(())
    }

    /// Heal a severed link (see [`Simulator::heal_link`]). The lookahead
    /// fixpoint is recomputed before any reconciliation traffic is
    /// scheduled: the re-enabled link may lower the conservative bound, and
    /// running a round against the stale graph would overshoot
    /// `run_until`'s boundary.
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        let was_severed = self.topology.is_severed(a, b);
        self.topology.heal_link(a, b)?;
        if !was_severed {
            return Ok(());
        }
        if S::ENABLED {
            self.sink.record(TelemetryEvent::LinkHealed {
                at: self.now,
                a: a.0,
                b: b.0,
            });
        }
        self.rebuild_shard_graph();
        let now = self.now;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        for (node, peer) in [(a, b), (b, a)] {
            if self.down.contains(&node) {
                continue;
            }
            let s = self.plan.shard_of(node);
            let slot = self.node_slot[node.0 as usize] as usize;
            {
                let shard = &mut self.shards[s];
                let mut ctx = Ctx::external(
                    node,
                    self.topology.neighbors(node),
                    now,
                    &mut outbox,
                    &mut shard.deliveries,
                );
                shard.nodes[slot].on_link_up(peer, &mut ctx);
            }
            for (to, msg, kind, units) in outbox.drain(..) {
                self.schedule_external(s, node, to, msg, kind, units);
            }
        }
        self.refresh_merged();
        Ok(())
    }

    /// Charge and schedule one send made outside the pump (recovery or
    /// link-up reconciliation), minting a fresh causal flood in the sender
    /// shard's sequence space. Honors the severed-at-the-radio drop rule.
    fn schedule_external(
        &mut self,
        s: usize,
        from: NodeId,
        to: NodeId,
        msg: B::Msg,
        kind: ChargeKind,
        units: u64,
    ) {
        let now = self.now;
        let at = now + self.latency.delay(from, to);
        let sender = &mut self.shards[s];
        sender.stats.charge(kind, from, to, units);
        let flood = flood_id(s as u32, sender.next_seq);
        let entry = Entry {
            origin: s as u32,
            seq: sender.next_seq,
            from,
            to,
            flood,
            msg,
        };
        sender.next_seq += 1;
        sender.scheduled_total += 1;
        let dest = self.plan.shard_of(to);
        if S::ENABLED {
            self.sink.record(TelemetryEvent::Scheduled {
                at: now,
                deliver_at: at,
                from: from.0,
                to: to.0,
                shard: dest as u32,
                flood,
                class: kind.traffic_class(),
                units,
            });
        }
        if from != to && self.topology.is_severed(from, to) {
            let sender = &mut self.shards[s];
            sender.queue_drops += 1;
            sender.dropped_severed += 1;
            if S::ENABLED {
                self.sink.record(TelemetryEvent::DroppedSevered {
                    at: now,
                    from: from.0,
                    to: to.0,
                    shard: s as u32,
                    flood,
                });
            }
            return;
        }
        self.shards[dest].push(at, entry);
    }

    /// Messages processed by live nodes since construction.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.steps).sum()
    }

    /// Accumulated traffic counters, merged over shards.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.merged_stats
    }

    /// Mutable access to the merged counters (engine wrappers charge
    /// management-plane traffic directly).
    pub fn stats_mut(&mut self) -> &mut TrafficStats {
        &mut self.merged_stats
    }

    /// Accumulated end-user deliveries, merged over shards.
    #[must_use]
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.merged_deliveries
    }

    /// Delivery-latency percentiles over the merged log.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        self.merged_deliveries.latency_summary()
    }

    /// Register an injection time for latency accounting. Broadcast to
    /// every shard log so deliveries anchor wherever the subscriber lives.
    pub fn note_injection(&mut self, event: EventId, at: u64) {
        for shard in &mut self.shards {
            shard.deliveries.note_injection(event, at);
        }
        self.merged_deliveries.note_injection(event, at);
    }

    /// Inject a local item at `node`, due at the current virtual time.
    pub fn inject(&mut self, node: NodeId, msg: B::Msg) {
        self.inject_at(node, msg, self.now);
    }

    /// Inject a local item scheduled for virtual time `at` (clamped to the
    /// present). Injections at downed nodes are dropped and counted.
    pub fn inject_at(&mut self, node: NodeId, msg: B::Msg, at: u64) {
        if self.down.contains(&node) {
            self.injection_drops += 1;
            return;
        }
        let s = self.plan.shard_of(node);
        let shard = &mut self.shards[s];
        // every injection mints a fresh causal flood id in its shard's
        // sequence space
        let flood = flood_id(s as u32, shard.next_seq);
        let entry = Entry {
            origin: s as u32,
            seq: shard.next_seq,
            from: node,
            to: node,
            flood,
            msg,
        };
        shard.next_seq += 1;
        shard.scheduled_total += 1;
        let deliver_at = at.max(self.now);
        if S::ENABLED {
            self.sink.record(TelemetryEvent::Scheduled {
                at: self.now,
                deliver_at,
                from: node.0,
                to: node.0,
                shard: s as u32,
                flood,
                class: TrafficClass::Inject,
                units: 1,
            });
        }
        shard.push(deliver_at, entry);
    }

    /// Crash a node (see [`Simulator::crash_and_regraft`]): the purge only
    /// touches the corpse's shard calendar, in place.
    pub fn crash_and_regraft(
        &mut self,
        crashed: NodeId,
        anchor: NodeId,
    ) -> Result<RegraftDelta, TopologyError> {
        if self.down.contains(&anchor) {
            return Err(TopologyError::BadEdge(crashed.0, anchor.0));
        }
        let (topology, delta) = self.topology.regraft_with_delta(crashed, anchor)?;
        self.topology = topology;
        if self.down.insert(crashed) {
            // Purge corpse-bound entries from EVERY shard, not just the
            // corpse's own: cross-shard routing normally lands them in
            // `shard_of(crashed)`, but entries parked in another shard's
            // calendar or outgoing buffer would otherwise survive as stale
            // tombstones and skew the conservation ledger.
            for shard in &mut self.shards {
                let mut purged = 0u64;
                shard.calendar.retain(|_, bucket| {
                    let before = bucket.len();
                    bucket.retain(|e| e.to != crashed);
                    purged += (before - bucket.len()) as u64;
                    !bucket.is_empty()
                });
                shard.queued -= purged as usize;
                // outgoing entries were scheduled but never pushed, so they
                // are absent from `queued` — drop-count them all the same
                let before = shard.outgoing.len();
                shard.outgoing.retain(|(_, _, e)| e.to != crashed);
                let total = purged + (before - shard.outgoing.len()) as u64;
                shard.queue_drops += total;
                shard.dropped_to_downed += total;
                if S::ENABLED && total > 0 {
                    self.sink.record(TelemetryEvent::Purged {
                        at: self.now,
                        node: crashed.0,
                        shard: shard.id as u32,
                        count: total,
                    });
                }
            }
        }
        for id in 0..self.node_slot.len() {
            let node = NodeId(id as u32);
            if !self.down.contains(&node) {
                let slot = self.node_slot[id] as usize;
                self.shards[self.plan.shard_of(node)].nodes[slot]
                    .on_topology_change(&self.topology);
            }
        }
        self.rebuild_shard_graph();
        Ok(delta)
    }

    /// Run the crash-recovery protocol (see [`Simulator::run_recovery`]):
    /// nodes are visited in global id order, so the recovery timeline stays
    /// deterministic across shard counts.
    pub fn run_recovery(&mut self, delta: &RegraftDelta) {
        let now = self.now;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        for id in 0..self.node_slot.len() {
            let node = NodeId(id as u32);
            if self.down.contains(&node) {
                continue;
            }
            let s = self.plan.shard_of(node);
            let slot = self.node_slot[id] as usize;
            let deliveries_before = self.shards[s].deliveries.complex_deliveries();
            {
                let shard = &mut self.shards[s];
                let mut ctx = Ctx::external(
                    node,
                    self.topology.neighbors(node),
                    now,
                    &mut outbox,
                    &mut shard.deliveries,
                );
                shard.nodes[slot].on_recover(delta, &mut ctx);
            }
            let sends = outbox.len() as u64;
            for (to, msg, kind, units) in outbox.drain(..) {
                // each recovery send starts a fresh causal flood: it was
                // not triggered by any in-flight message
                self.schedule_external(s, node, to, msg, kind, units);
            }
            if S::ENABLED {
                let deliveries = self.shards[s].deliveries.complex_deliveries() - deliveries_before;
                if deliveries + sends > 0 {
                    self.sink.record(TelemetryEvent::Recovered {
                        at: now,
                        node: node.0,
                        shard: s as u32,
                        deliveries,
                        sends,
                    });
                }
            }
        }
        self.refresh_merged();
    }

    fn refresh_merged(&mut self) {
        let merged_stats = &mut self.merged_stats;
        let merged_deliveries = &mut self.merged_deliveries;
        for shard in &mut self.shards {
            let stats = std::mem::take(&mut shard.stats);
            merged_stats.merge(&stats);
            shard.deliveries.drain_into(merged_deliveries);
        }
    }

    /// The runaway-protection panic message: the classic one-liner plus a
    /// telemetry snapshot (per-shard queue depths, hottest destination,
    /// and — when a recording sink is attached — the last lifecycle
    /// events).
    fn runaway_report(&self) -> String {
        let mut msg = format!(
            "simulator exceeded {} steps at virtual time {} with {} messages queued \
             — forwarding loop?",
            self.max_steps_per_run,
            self.now,
            self.queue_depth()
        );
        let depths: Vec<String> = self
            .shards
            .iter()
            .map(|s| format!("shard {}: {}", s.id, s.queued))
            .collect();
        msg.push_str(&format!("\n  queue depths: {}", depths.join(", ")));
        let mut queued_to: BTreeMap<NodeId, u64> = BTreeMap::new();
        for shard in &self.shards {
            for bucket in shard.calendar.values() {
                for e in bucket {
                    *queued_to.entry(e.to).or_default() += 1;
                }
            }
        }
        if let Some((node, depth)) = queued_to.into_iter().max_by_key(|&(_, d)| d) {
            msg.push_str(&format!("\n  hottest destination: {node} ({depth} queued)"));
        }
        if S::ENABLED {
            let recent = self.sink.recent(10);
            if !recent.is_empty() {
                msg.push_str("\n  last lifecycle events:");
                for ev in recent {
                    msg.push_str(&format!("\n    {ev:?}"));
                }
            }
        }
        msg
    }

    /// Round-based conservative pump (see the module docs). Returns the
    /// number of messages handled.
    fn pump(&mut self, horizon: Option<u64>) -> u64 {
        let mut total_handled = 0u64;
        let mut total_popped = 0u64;
        loop {
            let heads: Vec<Option<u64>> = self.shards.iter().map(ShardState::head).collect();
            let Some(gmin) = heads.iter().flatten().copied().min() else {
                break;
            };
            if horizon.is_some_and(|t| gmin > t) {
                break;
            }
            let caps = self.round_caps(&heads, horizon);
            let budget = self.max_steps_per_run - total_popped;
            // Boolean bitmap, not a membership list: the threaded branch
            // below checks every shard index against it, and a
            // `Vec::contains` scan there is O(shards²) per round.
            let runnable: Vec<bool> = (0..self.shards.len())
                .map(|s| heads[s].is_some_and(|h| h < caps[s].0))
                .collect();
            let runnable_count = runnable.iter().filter(|&&r| r).count();
            debug_assert!(runnable_count > 0, "the gmin shard always runs");
            let mut round_handled = 0u64;
            let mut round_popped = 0u64;
            // per-shard popped counts, for the ShardRound profiles
            let mut drained = vec![0u64; self.shards.len()];
            {
                let shards = &mut self.shards;
                let topology = &self.topology;
                let latency = &self.latency;
                let plan = &self.plan;
                let node_slot = &self.node_slot;
                let down = &self.down;
                if self.workers > 1 && runnable_count > 1 {
                    std::thread::scope(|sc| {
                        let mut handles = Vec::with_capacity(runnable_count);
                        for (idx, shard) in shards.iter_mut().enumerate() {
                            if !runnable[idx] {
                                continue;
                            }
                            let cap = caps[idx].0;
                            handles.push((
                                idx,
                                sc.spawn(move || {
                                    shard.advance(
                                        cap, budget, topology, latency, plan, node_slot, down,
                                    )
                                }),
                            ));
                        }
                        for (idx, h) in handles {
                            let (hd, pp) =
                                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                            round_handled += hd;
                            round_popped += pp;
                            drained[idx] = pp;
                        }
                    });
                } else {
                    for idx in (0..shards.len()).filter(|&s| runnable[s]) {
                        let (hd, pp) = shards[idx].advance(
                            caps[idx].0,
                            budget,
                            topology,
                            latency,
                            plan,
                            node_slot,
                            down,
                        );
                        round_handled += hd;
                        round_popped += pp;
                        drained[idx] = pp;
                    }
                }
            }
            total_handled += round_handled;
            total_popped += round_popped;
            if S::ENABLED {
                // one profile per shard that had work queued this round —
                // stalled shards (blocked by a neighbor's bound) show up
                // with drained = 0, which is exactly the interesting case
                for s in 0..self.shards.len() {
                    let Some(head) = heads[s] else { continue };
                    let (cap, by_neighbor) = caps[s];
                    self.sink.record(TelemetryEvent::ShardRound {
                        shard: s as u32,
                        round: self.rounds,
                        head,
                        cap: (cap != u64::MAX).then_some(cap),
                        capped_by_neighbor: by_neighbor,
                        drained: drained[s],
                        handoffs: self.shards[s].outgoing.len() as u64,
                    });
                }
            }
            self.rounds += 1;
            if total_popped > self.max_steps_per_run {
                panic!("{}", self.runaway_report());
            }
            // Route cross-shard handoffs at the barrier, in shard-id order:
            // the destination bucket sort key (origin, seq) makes arrival
            // order irrelevant, but routing deterministically keeps even
            // debug traces reproducible.
            for s in 0..self.shards.len() {
                let outgoing = std::mem::take(&mut self.shards[s].outgoing);
                for (at, dest, entry) in outgoing {
                    self.shards[dest].push(at, entry);
                }
            }
        }
        if let Some(t) = horizon {
            self.now = self.now.max(t);
        }
        for s in &self.shards {
            self.now = self.now.max(s.last_tick);
        }
        self.refresh_merged();
        total_handled
    }

    /// Process queued messages until the network is quiescent.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.pump(None)
    }

    /// Advance virtual time to `t`, delivering exactly the messages due at
    /// or before `t` (see [`Simulator::run_until`]).
    pub fn run_until(&mut self, t: u64) -> u64 {
        self.pump(Some(t))
    }

    /// Convenience: inject then run to quiescence.
    pub fn inject_and_run(&mut self, node: NodeId, msg: B::Msg) -> u64 {
        self.inject(node, msg);
        self.run_to_quiescence()
    }
}

/// One simulator behind one API: the single-queue oracle or the sharded
/// conservative-parallel engine, chosen per run. Engines hold a `Backend`
/// and never care which is active; `tests/sharded_equality.rs` gates the
/// sharded mode on event-for-event [`DeliveryLog`] equality with the
/// single mode.
#[derive(Debug)]
pub enum Backend<B: NodeBehavior + Send, S: TelemetrySink = Noop>
where
    B::Msg: Send,
{
    /// The original single-heap [`Simulator`] — the determinism oracle.
    Single(Simulator<B, S>),
    /// The sharded conservative-parallel simulator.
    Sharded(ShardedSimulator<B, S>),
}

impl<B: NodeBehavior + Send> Backend<B>
where
    B::Msg: Send,
{
    /// Build with `shards` requested: 1 selects the single-queue oracle,
    /// more selects the sharded engine.
    pub fn build(
        topology: Topology,
        latency: LatencyModel,
        shards: usize,
        make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        Self::build_with_sink(topology, latency, Noop, shards, make_node)
    }
}

impl<B: NodeBehavior + Send, S: TelemetrySink> Backend<B, S>
where
    B::Msg: Send,
{
    /// Build with a telemetry sink (see [`Backend::build`]).
    pub fn build_with_sink(
        topology: Topology,
        latency: LatencyModel,
        sink: S,
        shards: usize,
        make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        if shards <= 1 {
            Backend::Single(Simulator::with_sink(topology, latency, sink, make_node))
        } else {
            Backend::Sharded(ShardedSimulator::with_sink(
                topology, latency, sink, shards, make_node,
            ))
        }
    }

    /// Requested-or-effective shard count of the active backend.
    #[must_use]
    pub fn shards(&self) -> usize {
        match self {
            Backend::Single(_) => 1,
            Backend::Sharded(s) => s.plan().shards(),
        }
    }

    /// Switch the backend to `shards` shards. Only legal on a pristine
    /// simulator (no traffic scheduled yet): queued state cannot migrate.
    ///
    /// # Panics
    /// Panics if any message was already scheduled or the clock has moved.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.scheduled_total() == 0 && self.now() == 0,
            "set_shards requires a pristine simulator (no scheduled traffic)"
        );
        let placeholder_sink = match &*self {
            Backend::Single(s) => s.sink().clone(),
            Backend::Sharded(s) => s.sink().clone(),
        };
        let placeholder = Backend::Single(Simulator::from_parts(
            Topology::from_edges(0, &[]).expect("empty tree"),
            LatencyModel::Zero,
            Vec::new(),
            placeholder_sink,
        ));
        let old = std::mem::replace(self, placeholder);
        let (topology, latency, nodes, sink) = match old {
            Backend::Single(sim) => sim.into_parts(),
            Backend::Sharded(sim) => sim.into_parts(),
        };
        *self = if shards <= 1 {
            Backend::Single(Simulator::from_parts(topology, latency, nodes, sink))
        } else {
            let plan = if latency.min_hop() == 0 {
                ShardPlan::single(topology.len())
            } else {
                ShardPlan::partition(&topology, shards)
            };
            Backend::Sharded(ShardedSimulator::from_parts(
                topology, latency, plan, nodes, sink,
            ))
        };
    }

    /// The single-queue simulator, when active.
    ///
    /// # Panics
    /// Panics if the sharded backend is active — callers needing raw
    /// simulator access (examples, probes) run single-shard.
    #[must_use]
    pub fn as_single(&self) -> &Simulator<B, S> {
        match self {
            Backend::Single(sim) => sim,
            Backend::Sharded(_) => {
                panic!("raw simulator access requires the single-shard backend")
            }
        }
    }

    /// Mutable access to the single-queue simulator, when active (see
    /// [`Self::as_single`]).
    pub fn as_single_mut(&mut self) -> &mut Simulator<B, S> {
        match self {
            Backend::Single(sim) => sim,
            Backend::Sharded(_) => {
                panic!("raw simulator access requires the single-shard backend")
            }
        }
    }

    /// See [`Simulator::topology`].
    #[must_use]
    pub fn topology(&self) -> &Topology {
        match self {
            Backend::Single(s) => s.topology(),
            Backend::Sharded(s) => s.topology(),
        }
    }

    /// See [`Simulator::node`].
    #[must_use]
    pub fn node(&self, id: NodeId) -> &B {
        match self {
            Backend::Single(s) => s.node(id),
            Backend::Sharded(s) => s.node(id),
        }
    }

    /// See [`Simulator::node_mut`].
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        match self {
            Backend::Single(s) => s.node_mut(id),
            Backend::Sharded(s) => s.node_mut(id),
        }
    }

    /// See [`Simulator::is_down`].
    #[must_use]
    pub fn is_down(&self, id: NodeId) -> bool {
        match self {
            Backend::Single(s) => s.is_down(id),
            Backend::Sharded(s) => s.is_down(id),
        }
    }

    /// See [`Simulator::now`].
    #[must_use]
    pub fn now(&self) -> u64 {
        match self {
            Backend::Single(s) => s.now(),
            Backend::Sharded(s) => s.now(),
        }
    }

    /// See [`Simulator::queue_depth`].
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        match self {
            Backend::Single(s) => s.queue_depth(),
            Backend::Sharded(s) => s.queue_depth(),
        }
    }

    /// See [`Simulator::steps`].
    #[must_use]
    pub fn steps(&self) -> u64 {
        match self {
            Backend::Single(s) => s.steps(),
            Backend::Sharded(s) => s.steps(),
        }
    }

    /// See [`Simulator::scheduled_total`].
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Backend::Single(s) => s.scheduled_total(),
            Backend::Sharded(s) => s.scheduled_total(),
        }
    }

    /// See [`Simulator::dropped_from_queue`].
    #[must_use]
    pub fn dropped_from_queue(&self) -> u64 {
        match self {
            Backend::Single(s) => s.dropped_from_queue(),
            Backend::Sharded(s) => s.dropped_from_queue(),
        }
    }

    /// See [`Simulator::dropped_to_downed`].
    #[must_use]
    pub fn dropped_to_downed(&self) -> u64 {
        match self {
            Backend::Single(s) => s.dropped_to_downed(),
            Backend::Sharded(s) => s.dropped_to_downed(),
        }
    }

    /// Accumulated traffic counters.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        match self {
            Backend::Single(s) => &s.stats,
            Backend::Sharded(s) => s.stats(),
        }
    }

    /// Mutable counters (engine wrappers charge management-plane traffic).
    pub fn stats_mut(&mut self) -> &mut TrafficStats {
        match self {
            Backend::Single(s) => &mut s.stats,
            Backend::Sharded(s) => s.stats_mut(),
        }
    }

    /// Accumulated end-user deliveries.
    #[must_use]
    pub fn deliveries(&self) -> &DeliveryLog {
        match self {
            Backend::Single(s) => &s.deliveries,
            Backend::Sharded(s) => s.deliveries(),
        }
    }

    /// Register an injection time for latency accounting.
    pub fn note_injection(&mut self, event: EventId, at: u64) {
        match self {
            Backend::Single(s) => s.deliveries.note_injection(event, at),
            Backend::Sharded(s) => s.note_injection(event, at),
        }
    }

    /// See [`Simulator::inject`].
    pub fn inject(&mut self, node: NodeId, msg: B::Msg) {
        match self {
            Backend::Single(s) => s.inject(node, msg),
            Backend::Sharded(s) => s.inject(node, msg),
        }
    }

    /// See [`Simulator::inject_at`].
    pub fn inject_at(&mut self, node: NodeId, msg: B::Msg, at: u64) {
        match self {
            Backend::Single(s) => s.inject_at(node, msg, at),
            Backend::Sharded(s) => s.inject_at(node, msg, at),
        }
    }

    /// See [`Simulator::dropped_severed`].
    #[must_use]
    pub fn dropped_severed(&self) -> u64 {
        match self {
            Backend::Single(s) => s.dropped_severed(),
            Backend::Sharded(s) => s.dropped_severed(),
        }
    }

    /// See [`Simulator::sever_link`].
    pub fn sever_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        match self {
            Backend::Single(s) => s.sever_link(a, b),
            Backend::Sharded(s) => s.sever_link(a, b),
        }
    }

    /// See [`Simulator::heal_link`].
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        match self {
            Backend::Single(s) => s.heal_link(a, b),
            Backend::Sharded(s) => s.heal_link(a, b),
        }
    }

    /// See [`Simulator::set_liveness`].
    ///
    /// # Panics
    /// Panics on the sharded backend — the heartbeat detector runs on the
    /// single-queue simulator only (the beat emitter is a global-clock
    /// construct; a sharded port is a ROADMAP follow-on).
    pub fn set_liveness(&mut self, period: u64, timeout: u64) {
        match self {
            Backend::Single(s) => s.set_liveness(period, timeout),
            Backend::Sharded(_) => {
                panic!("heartbeat liveness requires the single-shard backend")
            }
        }
    }

    /// See [`Simulator::suspicions`]. Empty on the sharded backend.
    #[must_use]
    pub fn suspicions(&self) -> Vec<(NodeId, NodeId)> {
        match self {
            Backend::Single(s) => s.suspicions(),
            Backend::Sharded(_) => Vec::new(),
        }
    }

    /// See [`Simulator::take_confirmed_dead`]. Empty on the sharded
    /// backend.
    pub fn take_confirmed_dead(&mut self) -> Vec<NodeId> {
        match self {
            Backend::Single(s) => s.take_confirmed_dead(),
            Backend::Sharded(_) => Vec::new(),
        }
    }

    /// See [`Simulator::crash_and_regraft`].
    pub fn crash_and_regraft(
        &mut self,
        crashed: NodeId,
        anchor: NodeId,
    ) -> Result<RegraftDelta, TopologyError> {
        match self {
            Backend::Single(s) => s.crash_and_regraft(crashed, anchor),
            Backend::Sharded(s) => s.crash_and_regraft(crashed, anchor),
        }
    }

    /// See [`Simulator::run_recovery`].
    pub fn run_recovery(&mut self, delta: &RegraftDelta) {
        match self {
            Backend::Single(s) => s.run_recovery(delta),
            Backend::Sharded(s) => s.run_recovery(delta),
        }
    }

    /// See [`Simulator::run_to_quiescence`].
    pub fn run_to_quiescence(&mut self) -> u64 {
        match self {
            Backend::Single(s) => s.run_to_quiescence(),
            Backend::Sharded(s) => s.run_to_quiescence(),
        }
    }

    /// See [`Simulator::run_until`].
    pub fn run_until(&mut self, t: u64) -> u64 {
        match self {
            Backend::Single(s) => s.run_until(t),
            Backend::Sharded(s) => s.run_until(t),
        }
    }

    /// See [`Simulator::set_max_steps`].
    pub fn set_max_steps(&mut self, max: u64) {
        match self {
            Backend::Single(s) => s.set_max_steps(max),
            Backend::Sharded(s) => s.set_max_steps(max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    /// The flooding test behaviour from the `sim` tests.
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
        seen_at: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            self.seen_at.push(ctx.now());
            let me = ctx.node();
            for n in ctx.neighbors().to_vec() {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    fn sharded(n: usize, hop: u64, shards: usize) -> ShardedSimulator<Flood> {
        ShardedSimulator::with_latency(
            builders::balanced(n, 2),
            LatencyModel::Uniform { hop },
            shards,
            |_, _| Flood::default(),
        )
    }

    #[test]
    fn partitioner_carves_connected_balanced_shards() {
        let topo = builders::balanced(127, 2);
        let plan = ShardPlan::partition(&topo, 4);
        assert_eq!(plan.shards(), 4);
        let sizes = plan.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 127);
        assert!(
            sizes.iter().all(|&s| s >= 16),
            "no degenerate shard: {sizes:?}"
        );
        // each shard is connected: BFS within the shard from its first
        // member must reach every member
        for s in 0..plan.shards() {
            let members: Vec<NodeId> = topo.nodes().filter(|&n| plan.shard_of(n) == s).collect();
            let mut seen = std::collections::BTreeSet::new();
            let mut stack = vec![members[0]];
            seen.insert(members[0]);
            while let Some(u) = stack.pop() {
                for &v in topo.neighbors(u) {
                    if plan.shard_of(v) == s && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            assert_eq!(seen.len(), members.len(), "shard {s} is connected");
        }
    }

    #[test]
    fn star_collapses_to_one_effective_shard() {
        let plan = ShardPlan::partition(&builders::star(100), 4);
        assert_eq!(plan.shards(), 1, "no subtree is big enough to carve");
    }

    #[test]
    fn zero_latency_forces_the_coalesced_plan() {
        let sim = ShardedSimulator::with_latency(
            builders::balanced(31, 2),
            LatencyModel::Zero,
            4,
            |_, _| Flood::default(),
        );
        assert_eq!(sim.plan().shards(), 1);
    }

    #[test]
    fn sharded_flood_matches_single_sim_timing_and_traffic() {
        for shards in [1, 2, 4] {
            let mut sharded = sharded(63, 3, shards);
            let mut single = Simulator::with_latency(
                builders::balanced(63, 2),
                LatencyModel::Uniform { hop: 3 },
                |_, _| Flood::default(),
            );
            sharded.inject_and_run(NodeId(17), 7);
            single.inject_and_run(NodeId(17), 7);
            for n in 0..63u32 {
                assert_eq!(
                    sharded.node(NodeId(n)).seen_at,
                    single.node(NodeId(n)).seen_at,
                    "node n{n} at {shards} shards"
                );
            }
            assert_eq!(sharded.now(), single.now());
            assert_eq!(sharded.steps(), single.steps());
            assert_eq!(sharded.stats().adv_msgs(), single.stats.adv_msgs());
        }
    }

    #[test]
    fn run_until_stops_at_the_exact_event_boundary_across_shard_counts() {
        for shards in [1, 2, 4] {
            let mut sim = sharded(31, 5, shards);
            sim.inject(NodeId(0), 1);
            // the root's children hear the flood at exactly t=5
            let before = sim.run_until(4);
            assert_eq!(before, 1, "{shards} shards: only the root by t=4");
            let at = sim.run_until(5);
            assert_eq!(at, 2, "{shards} shards: both children exactly at t=5");
            assert_eq!(sim.now(), 5);
            sim.run_to_quiescence();
            assert_eq!(
                sim.scheduled_total(),
                sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                "{shards} shards: conservation at quiescence"
            );
        }
    }

    #[test]
    fn conservation_holds_at_every_pause_across_shard_counts() {
        for shards in [1, 2, 4, 8] {
            let mut sim = sharded(127, 2, shards);
            sim.inject(NodeId(3), 1);
            sim.inject_at(NodeId(77), 2, 4);
            for t in [1, 3, 6, 9, 50] {
                sim.run_until(t);
                assert_eq!(
                    sim.scheduled_total(),
                    sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                    "{shards} shards at t={t}"
                );
            }
        }
    }

    #[test]
    fn crash_purge_stays_in_place_and_conserves_messages() {
        for shards in [1, 2, 4] {
            let mut sim = sharded(63, 4, shards);
            sim.inject(NodeId(0), 1);
            sim.run_until(5); // front is between depth 1 and depth 2
            let depth_before = sim.queue_depth();
            assert!(depth_before > 0);
            // n5 (depth 2, child of n2) hears the flood at t=8 — not yet
            sim.crash_and_regraft(NodeId(5), NodeId(2)).unwrap();
            assert!(sim.is_down(NodeId(5)));
            sim.run_to_quiescence();
            assert!(sim.node(NodeId(5)).seen.is_empty(), "corpse heard nothing");
            assert_eq!(
                sim.scheduled_total(),
                sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn severed_links_drop_with_conservation_across_shard_counts() {
        for shards in [1, 2, 4] {
            let mut sim = sharded(63, 4, shards);
            sim.sever_link(NodeId(0), NodeId(2)).unwrap();
            sim.inject_and_run(NodeId(0), 1);
            assert!(
                sim.node(NodeId(2)).seen.is_empty(),
                "{shards} shards: right subtree unreachable"
            );
            assert!(!sim.node(NodeId(1)).seen.is_empty());
            assert!(sim.dropped_severed() > 0);
            assert_eq!(
                sim.scheduled_total(),
                sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                "{shards} shards: conservation across severed drops"
            );
            // heal: the next flood reaches the formerly cut-off subtree
            sim.heal_link(NodeId(0), NodeId(2)).unwrap();
            sim.inject_and_run(NodeId(0), 2);
            assert_eq!(sim.node(NodeId(2)).seen, vec![2], "{shards} shards");
        }
    }

    #[test]
    fn sharded_severed_flood_matches_single_sim() {
        for shards in [2, 4] {
            let mut sharded = sharded(63, 3, shards);
            let mut single = Simulator::with_latency(
                builders::balanced(63, 2),
                LatencyModel::Uniform { hop: 3 },
                |_, _| Flood::default(),
            );
            sharded.sever_link(NodeId(1), NodeId(3)).unwrap();
            single.sever_link(NodeId(1), NodeId(3)).unwrap();
            sharded.inject_and_run(NodeId(17), 7);
            single.inject_and_run(NodeId(17), 7);
            for n in 0..63u32 {
                assert_eq!(
                    sharded.node(NodeId(n)).seen_at,
                    single.node(NodeId(n)).seen_at,
                    "node n{n} at {shards} shards"
                );
            }
            assert_eq!(sharded.dropped_severed(), single.dropped_severed());
            assert_eq!(sharded.steps(), single.steps());
        }
    }

    #[test]
    fn run_until_boundary_is_exact_across_a_sever_heal_interleaving() {
        // The S4 hazard: a heal re-enables a link whose latency lowers the
        // conservative bound — the fixpoint must be recomputed before the
        // next round, or run_until(t) pops events past t.
        for shards in [1, 2, 4] {
            let mut sim = sharded(31, 5, shards);
            // drops happen at schedule time, so cut before the root sends
            sim.sever_link(NodeId(0), NodeId(1)).unwrap();
            sim.inject(NodeId(0), 1);
            sim.run_until(4);
            // left child never hears flood 1; right child does at t=5
            let at = sim.run_until(5);
            assert_eq!(at, 1, "{shards} shards: only the right child at t=5");
            sim.run_to_quiescence(); // flush flood 1 through the right half
            assert!(sim.node(NodeId(1)).seen.is_empty());
            let resume = sim.now();
            sim.heal_link(NodeId(0), NodeId(1)).unwrap();
            sim.inject_at(NodeId(0), 2, resume + 1);
            // flood 2 reaches both children at exactly resume + 6
            let before = sim.run_until(resume + 5);
            assert_eq!(before, 1, "{shards} shards: only the root before that");
            assert_eq!(sim.now(), resume + 5, "{shards} shards: clock at horizon");
            let at_boundary = sim.run_until(resume + 6);
            assert_eq!(
                at_boundary, 2,
                "{shards} shards: both children exactly at the boundary"
            );
            sim.run_to_quiescence();
            assert_eq!(sim.node(NodeId(1)).seen, vec![2], "{shards} shards");
            assert_eq!(
                sim.scheduled_total(),
                sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                "{shards} shards: conservation after sever/heal"
            );
        }
    }

    #[test]
    fn cross_shard_crash_purge_reconciles_every_calendar() {
        // S2: corpse-bound entries must vanish from every shard's calendar
        // and outgoing buffer at purge time, with exact drop accounting.
        for shards in [2, 4] {
            let mut sim = sharded(63, 4, shards);
            sim.inject(NodeId(0), 1);
            sim.run_until(5);
            sim.crash_and_regraft(NodeId(5), NodeId(2)).unwrap();
            for shard in &sim.shards {
                for bucket in shard.calendar.values() {
                    assert!(
                        bucket.iter().all(|e| e.to != NodeId(5)),
                        "{shards} shards: no stale corpse-bound entries"
                    );
                }
                assert!(shard.outgoing.is_empty());
            }
            sim.run_to_quiescence();
            assert_eq!(
                sim.scheduled_total(),
                sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn worker_threads_produce_the_identical_schedule() {
        let mut inline = sharded(127, 2, 4);
        inline.set_workers(1);
        let mut threaded = sharded(127, 2, 4);
        threaded.set_workers(4);
        for sim in [&mut inline, &mut threaded] {
            sim.inject(NodeId(9), 1);
            sim.inject_at(NodeId(100), 2, 3);
            sim.run_to_quiescence();
        }
        for n in 0..127u32 {
            assert_eq!(
                inline.node(NodeId(n)).seen_at,
                threaded.node(NodeId(n)).seen_at,
                "node n{n}"
            );
        }
        assert_eq!(inline.steps(), threaded.steps());
    }

    #[test]
    fn backend_set_shards_switches_pristine_simulators() {
        let topo = builders::balanced(31, 2);
        let mut backend: Backend<Flood> =
            Backend::build(topo, LatencyModel::Uniform { hop: 1 }, 1, |_, _| {
                Flood::default()
            });
        assert_eq!(backend.shards(), 1);
        backend.set_shards(4);
        assert_eq!(backend.shards(), 4);
        backend.inject_and_run_helper();
    }

    impl Backend<Flood> {
        fn inject_and_run_helper(&mut self) {
            self.inject(NodeId(0), 5);
            self.run_to_quiescence();
            assert_eq!(self.node(NodeId(30)).seen, vec![5]);
        }
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn backend_set_shards_rejects_scheduled_traffic() {
        let mut backend: Backend<Flood> = Backend::build(
            builders::balanced(7, 2),
            LatencyModel::Uniform { hop: 1 },
            1,
            |_, _| Flood::default(),
        );
        backend.inject(NodeId(0), 1);
        backend.set_shards(2);
    }

    #[test]
    #[should_panic(expected = "forwarding loop")]
    fn sharded_runaway_protection_trips() {
        #[derive(Debug)]
        struct PingPong;
        impl NodeBehavior for PingPong {
            type Msg = ();
            fn on_message(&mut self, from: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                let to = if from == ctx.node() {
                    ctx.neighbors()[0]
                } else {
                    from
                };
                ctx.send(to, (), ChargeKind::Event, 1);
            }
        }
        let mut sim = ShardedSimulator::with_latency(
            builders::line(8),
            LatencyModel::Uniform { hop: 1 },
            2,
            |_, _| PingPong,
        );
        sim.set_max_steps(500);
        sim.inject_and_run(NodeId(0), ());
    }
}
