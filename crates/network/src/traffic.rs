//! Traffic accounting — the paper's evaluation metrics (§VI-B).
//!
//! * **Subscription load** "increases every time an operator is forwarded to
//!   a neighboring node";
//! * **Publication load** counts forwarded result-set *data units* — we
//!   charge one unit per simple event crossing a link (a complex-event
//!   bundle of `k` simple events costs `k`);
//! * advertisement traffic is tracked but reported separately (the paper
//!   excludes it from the comparison since it is identical across the
//!   distributed approaches).
//!
//! Counters are stored as [`ChargeKind`]-indexed arrays — one slot per
//! class, both in the run totals and per directed link — so charging,
//! merging and whole-link sums are single loops instead of per-field
//! copies, and a new charge class is one enum variant away.

use crate::topology::NodeId;
use std::collections::BTreeMap;

/// What kind of traffic a message charge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChargeKind {
    /// Data-source advertisement flooding (Algorithm 1).
    Advertisement,
    /// A subscription / correlation operator forward (Algorithms 3–4).
    Subscription,
    /// Simple-event data units (Algorithm 5 / result sets).
    Event,
    /// Crash-recovery control traffic (advertisement re-floods after a
    /// `crash + regraft`). Reported separately so the recovery protocol's
    /// cost is visible next to the paper's load metrics.
    Recovery,
    /// Sensor-mobility control traffic: the generation-tagged `Move`
    /// re-advertisement flood a station emits when a known sensor id
    /// re-appears at a new node. Reported separately so the per-move
    /// handoff bill is visible (the `ext5` table); the operator re-splits a
    /// move triggers stay in the `Subscription` class, like any forward.
    Handoff,
    /// Heartbeat failure-detector traffic (ping/pong). Reported separately
    /// so the liveness layer's standing cost is visible next to the
    /// paper's load metrics; zero whenever the detector is off.
    Liveness,
}

impl ChargeKind {
    /// Number of charge classes (the counter-array width).
    pub const COUNT: usize = 6;

    /// Every class, in counter-array order.
    pub const ALL: [ChargeKind; Self::COUNT] = [
        ChargeKind::Advertisement,
        ChargeKind::Subscription,
        ChargeKind::Event,
        ChargeKind::Recovery,
        ChargeKind::Handoff,
        ChargeKind::Liveness,
    ];

    /// This class's slot in a counter array.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The telemetry-side class of this charge (telemetry additionally has
    /// an `Inject` class for locally injected items, which cross no link
    /// and are never charged).
    #[must_use]
    pub fn traffic_class(self) -> fsf_telemetry::TrafficClass {
        use fsf_telemetry::TrafficClass;
        match self {
            ChargeKind::Advertisement => TrafficClass::Advertisement,
            ChargeKind::Subscription => TrafficClass::Subscription,
            ChargeKind::Event => TrafficClass::Event,
            ChargeKind::Recovery => TrafficClass::Recovery,
            ChargeKind::Handoff => TrafficClass::Handoff,
            ChargeKind::Liveness => TrafficClass::Liveness,
        }
    }
}

/// Per-link counters, one slot per [`ChargeKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    by_kind: [u64; ChargeKind::COUNT],
}

impl LinkTraffic {
    /// Units of `kind` traffic over this directed link.
    #[must_use]
    pub fn by_kind(&self, kind: ChargeKind) -> u64 {
        self.by_kind[kind.index()]
    }

    /// Advertisement messages over this directed link.
    #[must_use]
    pub fn adv(&self) -> u64 {
        self.by_kind(ChargeKind::Advertisement)
    }

    /// Operators forwarded over this directed link.
    #[must_use]
    pub fn subs(&self) -> u64 {
        self.by_kind(ChargeKind::Subscription)
    }

    /// Simple-event units forwarded over this directed link.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.by_kind(ChargeKind::Event)
    }

    /// Recovery re-flood messages over this directed link.
    #[must_use]
    pub fn recovery(&self) -> u64 {
        self.by_kind(ChargeKind::Recovery)
    }

    /// Mobility handoff (`Move` re-advertisement) messages over this
    /// directed link.
    #[must_use]
    pub fn handoff(&self) -> u64 {
        self.by_kind(ChargeKind::Handoff)
    }

    /// Heartbeat ping/pong messages over this directed link.
    #[must_use]
    pub fn liveness(&self) -> u64 {
        self.by_kind(ChargeKind::Liveness)
    }

    /// Total units over this directed link, all classes together — the
    /// whole-link load the figures used to re-sum by hand.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.by_kind.iter().sum()
    }

    fn charge(&mut self, kind: ChargeKind, units: u64) {
        self.by_kind[kind.index()] += units;
    }

    fn merge(&mut self, other: &LinkTraffic) {
        for (slot, add) in self.by_kind.iter_mut().zip(other.by_kind) {
            *slot += add;
        }
    }
}

/// Aggregated traffic statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Run totals, one slot per [`ChargeKind`].
    totals: [u64; ChargeKind::COUNT],
    /// Directed per-link breakdown.
    per_link: BTreeMap<(NodeId, NodeId), LinkTraffic>,
}

impl TrafficStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `units` of `kind` traffic on the directed link `from → to`.
    pub fn charge(&mut self, kind: ChargeKind, from: NodeId, to: NodeId, units: u64) {
        self.totals[kind.index()] += units;
        self.per_link
            .entry((from, to))
            .or_default()
            .charge(kind, units);
    }

    /// Total units charged to `kind` across the whole run.
    #[must_use]
    pub fn by_kind(&self, kind: ChargeKind) -> u64 {
        self.totals[kind.index()]
    }

    /// Total advertisement messages.
    #[must_use]
    pub fn adv_msgs(&self) -> u64 {
        self.by_kind(ChargeKind::Advertisement)
    }

    /// Total operator forwards — the paper's *subscription load*
    /// ("number of forwarded queries").
    #[must_use]
    pub fn sub_forwards(&self) -> u64 {
        self.by_kind(ChargeKind::Subscription)
    }

    /// Total simple-event units forwarded — the paper's *publication load*
    /// ("number of forwarded data units").
    #[must_use]
    pub fn event_units(&self) -> u64 {
        self.by_kind(ChargeKind::Event)
    }

    /// Total crash-recovery re-flood messages (excluded from the paper's
    /// load comparison, like advertisement traffic).
    #[must_use]
    pub fn recovery_msgs(&self) -> u64 {
        self.by_kind(ChargeKind::Recovery)
    }

    /// Total mobility handoff (`Move` re-advertisement) messages — the
    /// control cost of sensor re-advertisement re-routing, reported per
    /// move in the `ext5` table.
    #[must_use]
    pub fn handoff_msgs(&self) -> u64 {
        self.by_kind(ChargeKind::Handoff)
    }

    /// Total heartbeat ping/pong messages — the failure detector's standing
    /// cost (zero with liveness off).
    #[must_use]
    pub fn liveness_msgs(&self) -> u64 {
        self.by_kind(ChargeKind::Liveness)
    }

    /// Per-link counters for a directed link.
    #[must_use]
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkTraffic {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterate over all directed links with traffic.
    pub fn links(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &LinkTraffic)> {
        self.per_link.iter()
    }

    /// Fold another run's statistics into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (slot, add) in self.totals.iter_mut().zip(other.totals) {
            *slot += add;
        }
        for (k, v) in &other.per_link {
            self.per_link.entry(*k).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_kind() {
        let mut s = TrafficStats::new();
        s.charge(ChargeKind::Subscription, NodeId(0), NodeId(1), 1);
        s.charge(ChargeKind::Subscription, NodeId(0), NodeId(1), 1);
        s.charge(ChargeKind::Event, NodeId(1), NodeId(0), 3);
        s.charge(ChargeKind::Advertisement, NodeId(2), NodeId(1), 1);
        s.charge(ChargeKind::Handoff, NodeId(2), NodeId(1), 2);
        assert_eq!(s.sub_forwards(), 2);
        assert_eq!(s.event_units(), 3);
        assert_eq!(s.adv_msgs(), 1);
        assert_eq!(s.handoff_msgs(), 2);
        assert_eq!(s.link(NodeId(2), NodeId(1)).handoff(), 2);
        assert_eq!(s.link(NodeId(0), NodeId(1)).subs(), 2);
        assert_eq!(s.link(NodeId(1), NodeId(0)).events(), 3);
        assert_eq!(s.link(NodeId(1), NodeId(2)).adv(), 0, "links are directed");
    }

    #[test]
    fn by_kind_and_totals_agree() {
        let mut s = TrafficStats::new();
        for (i, kind) in ChargeKind::ALL.into_iter().enumerate() {
            s.charge(kind, NodeId(0), NodeId(1), (i + 1) as u64);
        }
        for (i, kind) in ChargeKind::ALL.into_iter().enumerate() {
            assert_eq!(s.by_kind(kind), (i + 1) as u64, "{kind:?}");
            assert_eq!(s.link(NodeId(0), NodeId(1)).by_kind(kind), (i + 1) as u64);
        }
        assert_eq!(s.link(NodeId(0), NodeId(1)).total(), 1 + 2 + 3 + 4 + 5 + 6);
        assert_eq!(s.link(NodeId(1), NodeId(0)).total(), 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TrafficStats::new();
        a.charge(ChargeKind::Event, NodeId(0), NodeId(1), 5);
        let mut b = TrafficStats::new();
        b.charge(ChargeKind::Event, NodeId(0), NodeId(1), 7);
        b.charge(ChargeKind::Subscription, NodeId(1), NodeId(2), 1);
        a.merge(&b);
        assert_eq!(a.event_units(), 12);
        assert_eq!(a.sub_forwards(), 1);
        assert_eq!(a.link(NodeId(0), NodeId(1)).events(), 12);
        assert_eq!(a.links().count(), 2);
    }
}
