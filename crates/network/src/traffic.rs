//! Traffic accounting — the paper's evaluation metrics (§VI-B).
//!
//! * **Subscription load** "increases every time an operator is forwarded to
//!   a neighboring node";
//! * **Publication load** counts forwarded result-set *data units* — we
//!   charge one unit per simple event crossing a link (a complex-event
//!   bundle of `k` simple events costs `k`);
//! * advertisement traffic is tracked but reported separately (the paper
//!   excludes it from the comparison since it is identical across the
//!   distributed approaches).

use crate::topology::NodeId;
use std::collections::BTreeMap;

/// What kind of traffic a message charge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// Data-source advertisement flooding (Algorithm 1).
    Advertisement,
    /// A subscription / correlation operator forward (Algorithms 3–4).
    Subscription,
    /// Simple-event data units (Algorithm 5 / result sets).
    Event,
    /// Crash-recovery control traffic (advertisement re-floods after a
    /// `crash + regraft`). Reported separately so the recovery protocol's
    /// cost is visible next to the paper's load metrics.
    Recovery,
    /// Sensor-mobility control traffic: the generation-tagged `Move`
    /// re-advertisement flood a station emits when a known sensor id
    /// re-appears at a new node. Reported separately so the per-move
    /// handoff bill is visible (the `ext5` table); the operator re-splits a
    /// move triggers stay in the `Subscription` class, like any forward.
    Handoff,
}

/// Per-link counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Advertisement messages over this directed link.
    pub adv: u64,
    /// Operators forwarded over this directed link.
    pub subs: u64,
    /// Simple-event units forwarded over this directed link.
    pub events: u64,
    /// Recovery re-flood messages over this directed link.
    pub recovery: u64,
    /// Mobility handoff (`Move` re-advertisement) messages over this
    /// directed link.
    pub handoff: u64,
}

/// Aggregated traffic statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Total advertisement messages.
    pub adv_msgs: u64,
    /// Total operator forwards — the paper's *subscription load*
    /// ("number of forwarded queries").
    pub sub_forwards: u64,
    /// Total simple-event units forwarded — the paper's *publication load*
    /// ("number of forwarded data units").
    pub event_units: u64,
    /// Total crash-recovery re-flood messages (excluded from the paper's
    /// load comparison, like advertisement traffic).
    pub recovery_msgs: u64,
    /// Total mobility handoff (`Move` re-advertisement) messages — the
    /// control cost of sensor re-advertisement re-routing, reported per
    /// move in the `ext5` table.
    pub handoff_msgs: u64,
    /// Directed per-link breakdown.
    per_link: BTreeMap<(NodeId, NodeId), LinkTraffic>,
}

impl TrafficStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `units` of `kind` traffic on the directed link `from → to`.
    pub fn charge(&mut self, kind: ChargeKind, from: NodeId, to: NodeId, units: u64) {
        let link = self.per_link.entry((from, to)).or_default();
        match kind {
            ChargeKind::Advertisement => {
                self.adv_msgs += units;
                link.adv += units;
            }
            ChargeKind::Subscription => {
                self.sub_forwards += units;
                link.subs += units;
            }
            ChargeKind::Event => {
                self.event_units += units;
                link.events += units;
            }
            ChargeKind::Recovery => {
                self.recovery_msgs += units;
                link.recovery += units;
            }
            ChargeKind::Handoff => {
                self.handoff_msgs += units;
                link.handoff += units;
            }
        }
    }

    /// Per-link counters for a directed link.
    #[must_use]
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkTraffic {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterate over all directed links with traffic.
    pub fn links(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &LinkTraffic)> {
        self.per_link.iter()
    }

    /// Fold another run's statistics into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.adv_msgs += other.adv_msgs;
        self.sub_forwards += other.sub_forwards;
        self.event_units += other.event_units;
        self.recovery_msgs += other.recovery_msgs;
        self.handoff_msgs += other.handoff_msgs;
        for (k, v) in &other.per_link {
            let link = self.per_link.entry(*k).or_default();
            link.adv += v.adv;
            link.subs += v.subs;
            link.events += v.events;
            link.recovery += v.recovery;
            link.handoff += v.handoff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_kind() {
        let mut s = TrafficStats::new();
        s.charge(ChargeKind::Subscription, NodeId(0), NodeId(1), 1);
        s.charge(ChargeKind::Subscription, NodeId(0), NodeId(1), 1);
        s.charge(ChargeKind::Event, NodeId(1), NodeId(0), 3);
        s.charge(ChargeKind::Advertisement, NodeId(2), NodeId(1), 1);
        s.charge(ChargeKind::Handoff, NodeId(2), NodeId(1), 2);
        assert_eq!(s.sub_forwards, 2);
        assert_eq!(s.event_units, 3);
        assert_eq!(s.adv_msgs, 1);
        assert_eq!(s.handoff_msgs, 2);
        assert_eq!(s.link(NodeId(2), NodeId(1)).handoff, 2);
        assert_eq!(s.link(NodeId(0), NodeId(1)).subs, 2);
        assert_eq!(s.link(NodeId(1), NodeId(0)).events, 3);
        assert_eq!(s.link(NodeId(1), NodeId(2)).adv, 0, "links are directed");
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TrafficStats::new();
        a.charge(ChargeKind::Event, NodeId(0), NodeId(1), 5);
        let mut b = TrafficStats::new();
        b.charge(ChargeKind::Event, NodeId(0), NodeId(1), 7);
        b.charge(ChargeKind::Subscription, NodeId(1), NodeId(2), 1);
        a.merge(&b);
        assert_eq!(a.event_units, 12);
        assert_eq!(a.sub_forwards, 1);
        assert_eq!(a.link(NodeId(0), NodeId(1)).events, 12);
        assert_eq!(a.links().count(), 2);
    }
}
