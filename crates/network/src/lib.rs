//! # fsf-network
//!
//! The network substrate the paper's system runs on (§IV-B "System Model"):
//! processing nodes connected in an **acyclic graph**, exchanging
//! advertisements, subscriptions and events, with *network traffic* as the
//! metric of interest.
//!
//! The paper evaluated on a Xen cluster of 60–200 paravirtualised VMs; the
//! metrics it reports (subscription load = operators forwarded over links,
//! publication load = simple-event data units forwarded over links) are
//! properties of the algorithms and the topology, not of timing. This crate
//! therefore provides:
//!
//! * [`topology`] — validated tree topologies, unique-path routing, the
//!   graph median (the "central node with the minimum pairwise distance to
//!   all other nodes" used by the Centralized baseline), and builders
//!   including the SensorScope-style clustered layout of §VI-A;
//! * [`traffic`] — per-kind and per-link traffic accounting;
//! * [`latency`] — deterministic per-link message-latency models and
//!   delivery-latency summaries (p50/p95/max virtual ticks);
//! * [`sim`] — a deterministic **discrete-event** message simulator over a
//!   [`sim::NodeBehavior`] trait: a timestamped priority queue ordered by
//!   `(deliver_at, seq)`, a virtual clock exposed through [`sim::Ctx::now`],
//!   partial advancement via [`sim::Simulator::run_until`], and a
//!   zero-latency mode that reproduces the legacy run-to-quiescence FIFO
//!   order exactly (see the `sim` module docs for the event-clock
//!   semantics, the tie-breaking rule, and the compat guarantee). The same
//!   trait is executed by real OS threads in `fsf-runtime`, demonstrating
//!   the node logic under genuine concurrency.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod builders;
pub mod latency;
pub mod shard;
pub mod sim;
pub mod topology;
pub mod traffic;

pub use builders::ClusteredLayout;
pub use latency::{LatencyModel, LatencySummary};
pub use shard::{Backend, ShardPlan, ShardedSimulator};
pub use sim::{Ctx, DeliveryLog, NodeBehavior, Simulator};
pub use topology::{NodeId, RegraftDelta, Topology, TopologyError};
pub use traffic::{ChargeKind, TrafficStats};
