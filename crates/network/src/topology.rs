//! Acyclic network topologies and unique-path routing.
//!
//! The paper's system model (§IV-B): "processing nodes connected in an
//! acyclic graph". In a tree every pair of nodes has a unique path, which is
//! what makes reverse-advertisement-path routing of subscriptions and
//! reverse-subscription-path routing of events well-defined.

use std::collections::{BTreeSet, VecDeque};

/// Identifier of a processing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a node outside `0..n`.
    NodeOutOfRange(u32),
    /// A self-loop or duplicate edge was supplied.
    BadEdge(u32, u32),
    /// The edge set does not form a single connected tree.
    NotATree,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange(n) => write!(f, "node n{n} out of range"),
            TopologyError::BadEdge(a, b) => write!(f, "bad edge (n{a}, n{b})"),
            TopologyError::NotATree => write!(f, "edge set is not a connected tree"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// What a [`Topology::regraft`] actually changed — the membership-change
/// delta the crash-recovery protocol reacts to. Surfaced to node behaviors
/// through [`crate::NodeBehavior::on_recover`] so that the nodes adjacent
/// to the crash know exactly which origin slots went stale and which new
/// edges carry the re-grafted subtrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegraftDelta {
    /// The node that crashed (stays attached to `anchor` as a downed leaf).
    pub crashed: NodeId,
    /// The neighbor that adopted the orphaned subtrees.
    pub anchor: NodeId,
    /// The crashed node's former neighbors other than `anchor`: the roots
    /// of the orphaned subtrees, each now a direct neighbor of `anchor`.
    pub orphans: Vec<NodeId>,
}

impl RegraftDelta {
    /// Was `node` a neighbor of the crashed node before the regraft? These
    /// are the nodes whose per-origin state for the crashed neighbor went
    /// stale (the recovery protocol's purge set).
    #[must_use]
    pub fn was_neighbor(&self, node: NodeId) -> bool {
        node == self.anchor || self.orphans.contains(&node)
    }
}

/// A validated tree over nodes `0..n`.
///
/// Links can be *severed* (partition) and later *healed*: the edge stays in
/// the adjacency lists — routing state on both sides keeps pointing across
/// the cut — but carriers consult [`Topology::is_severed`] and drop traffic
/// on the floor (with conservation accounting) while the link is down.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
    /// Severed edges, normalized `(min, max)`.
    severed: BTreeSet<(u32, u32)>,
}

fn norm_edge(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl Topology {
    /// Build from an explicit edge list. The edges must form a tree:
    /// exactly `n − 1` distinct non-loop edges connecting all `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, TopologyError> {
        if edges.len() != n.saturating_sub(1) {
            return Err(TopologyError::NotATree);
        }
        let mut degree = vec![0u32; n];
        for &(a, b) in edges {
            if a as usize >= n {
                return Err(TopologyError::NodeOutOfRange(a));
            }
            if b as usize >= n {
                return Err(TopologyError::NodeOutOfRange(b));
            }
            if a == b {
                return Err(TopologyError::BadEdge(a, b));
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        // Duplicate detection via a sorted normalized copy — O(m log m)
        // instead of the per-edge adjacency scan that made hub-heavy trees
        // (stars, gateways) quadratic to build.
        let mut normalized: Vec<(u32, u32)> =
            edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        normalized.sort_unstable();
        for w in normalized.windows(2) {
            if w[0] == w[1] {
                return Err(TopologyError::BadEdge(w[0].0, w[0].1));
            }
        }
        let mut adj: Vec<Vec<NodeId>> = degree
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        for &(a, b) in edges {
            adj[a as usize].push(NodeId(b));
            adj[b as usize].push(NodeId(a));
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        let topo = Topology {
            adj,
            severed: BTreeSet::new(),
        };
        // n-1 distinct edges + connected ⇒ tree
        if n > 0 && topo.bfs_order(NodeId(0)).len() != n {
            return Err(TopologyError::NotATree);
        }
        Ok(topo)
    }

    /// Sever the link between two adjacent nodes: the edge stays in the
    /// adjacency lists (routes on both sides keep pointing across it) but
    /// traffic over it is dropped by the carriers until [`Self::heal_link`].
    /// Idempotent; rejects non-edges.
    pub fn sever_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        if a == b || a.0 as usize >= self.len() || !self.neighbors(a).contains(&b) {
            return Err(TopologyError::BadEdge(a.0, b.0));
        }
        self.severed.insert(norm_edge(a, b));
        Ok(())
    }

    /// Re-enable a severed link. Idempotent; rejects non-edges.
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        if a == b || a.0 as usize >= self.len() || !self.neighbors(a).contains(&b) {
            return Err(TopologyError::BadEdge(a.0, b.0));
        }
        self.severed.remove(&norm_edge(a, b));
        Ok(())
    }

    /// Is the link between `a` and `b` currently severed?
    #[must_use]
    pub fn is_severed(&self, a: NodeId, b: NodeId) -> bool {
        self.severed.contains(&norm_edge(a, b))
    }

    /// Currently severed links, normalized `(min, max)` and sorted.
    pub fn severed_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.severed.iter().map(|&(a, b)| (NodeId(a), NodeId(b)))
    }

    /// Any severed links at all?
    #[must_use]
    pub fn has_severed_links(&self) -> bool {
        !self.severed.is_empty()
    }

    /// Component label per node of the graph with severed edges removed:
    /// `labels[v]` is the smallest node id reachable from `v` without
    /// crossing a severed link. With no severed links every label is 0.
    /// This is the reachability oracle partition tests compare against.
    #[must_use]
    pub fn components(&self) -> Vec<u32> {
        let n = self.len();
        let mut labels = vec![u32::MAX; n];
        for root in 0..n as u32 {
            if labels[root as usize] != u32::MAX {
                continue;
            }
            let mut q = VecDeque::new();
            labels[root as usize] = root;
            q.push_back(NodeId(root));
            while let Some(u) = q.pop_front() {
                for &v in self.neighbors(u) {
                    if labels[v.0 as usize] == u32::MAX && !self.is_severed(u, v) {
                        labels[v.0 as usize] = root;
                        q.push_back(v);
                    }
                }
            }
        }
        labels
    }

    /// Are `a` and `b` connected without crossing a severed link?
    #[must_use]
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if self.severed.is_empty() {
            return true;
        }
        let labels = self.components();
        labels[a.0 as usize] == labels[b.0 as usize]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Is the topology empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Neighbors of a node, sorted ascending.
    #[must_use]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.0 as usize]
    }

    /// Node degree.
    #[must_use]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0 as usize].len()
    }

    /// BFS visit order from `root` (used for connectivity validation and
    /// the shard partitioner's subtree carving).
    pub(crate) fn bfs_order(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.adj.len()];
        let mut order = Vec::with_capacity(self.adj.len());
        let mut q = VecDeque::new();
        seen[root.0 as usize] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in self.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    q.push_back(v);
                }
            }
        }
        order
    }

    /// Parent pointers of the BFS tree rooted at `root`:
    /// `parents[v]` is `v`'s neighbor on the unique path toward `root`
    /// (`None` for the root). This is the next-hop table the Centralized
    /// baseline routes with.
    #[must_use]
    pub fn parents_toward(&self, root: NodeId) -> Vec<Option<NodeId>> {
        let mut parents: Vec<Option<NodeId>> = vec![None; self.adj.len()];
        let mut seen = vec![false; self.adj.len()];
        let mut q = VecDeque::new();
        seen[root.0 as usize] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    parents[v.0 as usize] = Some(u);
                    q.push_back(v);
                }
            }
        }
        parents
    }

    /// The unique path from `a` to `b`, inclusive of both endpoints.
    #[must_use]
    pub fn path(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let parents = self.parents_toward(a);
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            let p = parents[cur.0 as usize].expect("tree is connected");
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Hop distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.path(a, b).len() - 1
    }

    /// All-nodes hop distances from `root` (one BFS).
    #[must_use]
    pub fn distances_from(&self, root: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut q = VecDeque::new();
        dist[root.0 as usize] = 0;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.0 as usize] == usize::MAX {
                    dist[v.0 as usize] = dist[u.0 as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// The graph median: the node minimising the sum of distances to all
    /// other nodes — the paper's "central node (the node with the minimum
    /// pairwise distance to all other nodes)" used by the Centralized
    /// baseline. Ties break toward the smaller id (deterministic).
    #[must_use]
    pub fn median(&self) -> NodeId {
        assert!(!self.is_empty(), "median of empty topology");
        // Rerooting DP in O(n): one pass up the BFS tree accumulates
        // subtree sizes and depth sums, one pass down transfers the total
        // across each edge (moving the root toward a child brings its
        // subtree one hop closer and pushes everything else one hop away:
        // total(v) = total(parent) + n − 2·size(v)). The old per-node BFS
        // was O(n²) and dominated million-node setup.
        let n = self.len();
        let root = NodeId(0);
        let order = self.bfs_order(root);
        let parents = self.parents_toward(root);
        let mut size = vec![1i64; n];
        let mut total = vec![0i64; n];
        for &v in order.iter().rev() {
            if let Some(p) = parents[v.0 as usize] {
                size[p.0 as usize] += size[v.0 as usize];
                // depth sum relative to p, via v's subtree
                total[p.0 as usize] += total[v.0 as usize] + size[v.0 as usize];
            }
        }
        for &v in &order {
            if let Some(p) = parents[v.0 as usize] {
                total[v.0 as usize] = total[p.0 as usize] + n as i64 - 2 * size[v.0 as usize];
            }
        }
        let mut best = (total[0], NodeId(0));
        for (v, &t) in total.iter().enumerate().skip(1) {
            if t < best.0 {
                best = (t, NodeId(v as u32));
            }
        }
        best.1
    }

    /// Re-graft the subtree around a crashed node: every edge of `crashed`
    /// except the one to `anchor` is replaced by an edge from the orphaned
    /// neighbor directly to `anchor`, so the survivors stay a connected
    /// tree. `crashed` itself remains attached to `anchor` as a leaf (its id
    /// stays valid; the simulator marks it down so it never processes or
    /// receives anything). `anchor` must be a neighbor of `crashed`.
    pub fn regraft(&self, crashed: NodeId, anchor: NodeId) -> Result<Topology, TopologyError> {
        self.regraft_with_delta(crashed, anchor).map(|(t, _)| t)
    }

    /// [`Self::regraft`], additionally returning the [`RegraftDelta`]
    /// describing what moved — the input of the crash-recovery protocol.
    pub fn regraft_with_delta(
        &self,
        crashed: NodeId,
        anchor: NodeId,
    ) -> Result<(Topology, RegraftDelta), TopologyError> {
        if crashed == anchor
            || crashed.0 as usize >= self.len()
            || anchor.0 as usize >= self.len()
            || !self.neighbors(crashed).contains(&anchor)
        {
            return Err(TopologyError::BadEdge(crashed.0, anchor.0));
        }
        let mut adj = self.adj.clone();
        let orphans: Vec<NodeId> = self
            .neighbors(crashed)
            .iter()
            .copied()
            .filter(|&n| n != anchor)
            .collect();
        adj[crashed.0 as usize] = vec![anchor];
        for &o in &orphans {
            let l = &mut adj[o.0 as usize];
            l.retain(|&n| n != crashed);
            l.push(anchor);
            l.sort_unstable();
            adj[anchor.0 as usize].push(o);
        }
        adj[anchor.0 as usize].sort_unstable();
        // Severed state survives a regraft for edges that still exist; cuts
        // on edges the regraft rewired (those incident to the corpse) are
        // dropped — the replacement edges to the anchor start healthy.
        let severed: BTreeSet<(u32, u32)> = self
            .severed
            .iter()
            .copied()
            .filter(|&(a, b)| adj[a as usize].contains(&NodeId(b)))
            .collect();
        let topo = Topology { adj, severed };
        debug_assert_eq!(
            topo.bfs_order(anchor).len(),
            topo.len(),
            "regraft stays a tree"
        );
        Ok((
            topo,
            RegraftDelta {
                crashed,
                anchor,
                orphans,
            },
        ))
    }

    /// The tree diameter in hops (longest node-to-node path), via double
    /// BFS. With a per-hop latency bound this bounds how long any flood
    /// stays in flight — the timed churn replay uses it to size safety
    /// gaps.
    #[must_use]
    pub fn diameter(&self) -> usize {
        if self.len() <= 1 {
            return 0;
        }
        let far = |from: NodeId| {
            let d = self.distances_from(from);
            let (i, &best) = d
                .iter()
                .enumerate()
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .expect("non-empty");
            (NodeId(i as u32), best)
        };
        let (u, _) = far(NodeId(0));
        far(u).1
    }

    /// Sum over all node pairs of hop distance — a compactness measure used
    /// in tests and reports.
    #[must_use]
    pub fn wiener_index(&self) -> usize {
        self.nodes()
            .map(|n| self.distances_from(n).iter().sum::<usize>())
            .sum::<usize>()
            / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn rejects_cycles_disconnected_and_loops() {
        assert_eq!(
            Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err(),
            TopologyError::NotATree
        );
        assert_eq!(
            Topology::from_edges(4, &[(0, 1), (2, 3), (0, 1)]).unwrap_err(),
            TopologyError::BadEdge(0, 1)
        );
        assert_eq!(
            Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap_err(),
            TopologyError::NotATree
        );
        assert_eq!(
            Topology::from_edges(2, &[(0, 2)]).unwrap_err(),
            TopologyError::NodeOutOfRange(2)
        );
        assert_eq!(
            Topology::from_edges(2, &[(1, 1)]).unwrap_err(),
            TopologyError::BadEdge(1, 1)
        );
    }

    #[test]
    fn neighbors_are_sorted() {
        let t = Topology::from_edges(4, &[(1, 3), (1, 0), (1, 2)]).unwrap();
        assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(t.degree(NodeId(1)), 3);
        assert_eq!(t.degree(NodeId(0)), 1);
    }

    #[test]
    fn path_and_distance_on_line() {
        let t = line(5);
        assert_eq!(
            t.path(NodeId(0), NodeId(4)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(t.path(NodeId(4), NodeId(0)).len(), 5);
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.distance(NodeId(2), NodeId(2)), 0);
        assert_eq!(t.path(NodeId(2), NodeId(2)), vec![NodeId(2)]);
    }

    #[test]
    fn parents_toward_gives_next_hops() {
        let t = line(4);
        let p = t.parents_toward(NodeId(0));
        assert_eq!(p[0], None);
        assert_eq!(p[1], Some(NodeId(0)));
        assert_eq!(p[3], Some(NodeId(2)));
    }

    #[test]
    fn median_of_line_is_middle() {
        assert_eq!(line(5).median(), NodeId(2));
        // even line: tie between 1 and 2 breaks low
        assert_eq!(line(4).median(), NodeId(1));
    }

    #[test]
    fn median_of_star_is_hub() {
        let t = Topology::from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4)]).unwrap();
        assert_eq!(t.median(), NodeId(2));
    }

    #[test]
    fn median_matches_brute_force_on_assorted_trees() {
        // the rerooting DP must agree with the definitional scan,
        // including its low-id tie-break
        let shapes = [
            line(9),
            Topology::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)]).unwrap(),
            Topology::from_edges(6, &[(3, 0), (3, 1), (3, 2), (0, 4), (4, 5)]).unwrap(),
        ];
        for t in shapes {
            let mut best = (usize::MAX, NodeId(0));
            for n in t.nodes() {
                let total: usize = t.distances_from(n).iter().sum();
                if total < best.0 {
                    best = (total, n);
                }
            }
            assert_eq!(t.median(), best.1, "tree with {} nodes", t.len());
        }
    }

    #[test]
    fn distances_from_matches_pairwise_distance() {
        let t = line(6);
        let d = t.distances_from(NodeId(3));
        for v in t.nodes() {
            assert_eq!(d[v.0 as usize], t.distance(NodeId(3), v));
        }
    }

    #[test]
    fn diameter_is_the_longest_path() {
        assert_eq!(line(4).diameter(), 3);
        assert_eq!(line(1).diameter(), 0);
        // star: any leaf-to-leaf path is 2 hops
        let star = Topology::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(star.diameter(), 2);
    }

    #[test]
    fn wiener_index_of_line4() {
        // pairs: 01,02,03,12,13,23 → 1+2+3+1+2+1 = 10
        assert_eq!(line(4).wiener_index(), 10);
    }

    #[test]
    fn regraft_moves_orphans_to_anchor() {
        // star around 2, crash the hub onto neighbor 0
        let t = Topology::from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4)]).unwrap();
        let r = t.regraft(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.neighbors(NodeId(2)), &[NodeId(0)], "crashed is a leaf");
        assert_eq!(
            r.neighbors(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        // survivors stay connected without passing through the crashed node
        assert_eq!(
            r.path(NodeId(1), NodeId(4)),
            vec![NodeId(1), NodeId(0), NodeId(4)]
        );
    }

    #[test]
    fn regraft_delta_names_the_orphans() {
        // star around 2: crash the hub onto 0 — 1, 3, 4 are orphaned
        let t = Topology::from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4)]).unwrap();
        let (r, delta) = t.regraft_with_delta(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(r, t.regraft(NodeId(2), NodeId(0)).unwrap());
        assert_eq!(delta.crashed, NodeId(2));
        assert_eq!(delta.anchor, NodeId(0));
        assert_eq!(delta.orphans, vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert!(delta.was_neighbor(NodeId(0)), "anchor was a neighbor");
        assert!(delta.was_neighbor(NodeId(3)), "orphan was a neighbor");
        assert!(!delta.was_neighbor(NodeId(2)), "crashed is not in the set");
    }

    #[test]
    fn regraft_of_leaf_changes_nothing() {
        let t = line(4);
        let r = t.regraft(NodeId(3), NodeId(2)).unwrap();
        assert_eq!(r, t);
    }

    #[test]
    fn regraft_rejects_non_neighbor_anchor_and_self() {
        let t = line(4);
        assert!(t.regraft(NodeId(1), NodeId(3)).is_err(), "not a neighbor");
        assert!(t.regraft(NodeId(1), NodeId(1)).is_err(), "self anchor");
        assert!(t.regraft(NodeId(9), NodeId(0)).is_err(), "out of range");
    }

    #[test]
    fn sever_and_heal_track_components() {
        let mut t = line(5);
        assert!(t.reachable(NodeId(0), NodeId(4)));
        assert!(!t.has_severed_links());
        t.sever_link(NodeId(2), NodeId(1)).unwrap();
        assert!(t.is_severed(NodeId(1), NodeId(2)), "normalized lookup");
        assert!(t.has_severed_links());
        assert_eq!(
            t.severed_links().collect::<Vec<_>>(),
            vec![(NodeId(1), NodeId(2))]
        );
        // adjacency unchanged: routes still point across the cut
        assert_eq!(t.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        let labels = t.components();
        assert_eq!(labels, vec![0, 0, 2, 2, 2]);
        assert!(!t.reachable(NodeId(0), NodeId(3)));
        assert!(t.reachable(NodeId(2), NodeId(4)));
        // idempotent sever, then heal restores a single component
        t.sever_link(NodeId(1), NodeId(2)).unwrap();
        t.heal_link(NodeId(1), NodeId(2)).unwrap();
        assert!(!t.is_severed(NodeId(1), NodeId(2)));
        assert!(t.reachable(NodeId(0), NodeId(4)));
        // healing a healthy link is a no-op, non-edges are rejected
        t.heal_link(NodeId(0), NodeId(1)).unwrap();
        assert!(t.sever_link(NodeId(0), NodeId(4)).is_err());
        assert!(t.sever_link(NodeId(1), NodeId(1)).is_err());
        assert!(t.heal_link(NodeId(0), NodeId(4)).is_err());
    }

    #[test]
    fn regraft_keeps_surviving_cuts_and_drops_rewired_ones() {
        // line 0-1-2-3-4: sever (0,1) and (2,3), crash 3 onto 2
        let mut t = line(5);
        t.sever_link(NodeId(0), NodeId(1)).unwrap();
        t.sever_link(NodeId(2), NodeId(3)).unwrap();
        let (r, _) = t.regraft_with_delta(NodeId(3), NodeId(2)).unwrap();
        // 4 was orphaned onto 2 — the severed (2,3) edge still exists
        // (corpse leaf link) so its cut survives; (0,1) is untouched.
        assert!(r.is_severed(NodeId(0), NodeId(1)));
        assert!(r.is_severed(NodeId(2), NodeId(3)));
        assert!(!r.is_severed(NodeId(2), NodeId(4)), "new edge is healthy");
        // crash 1 onto 2: the (0,1) edge is rewired to (0,2) — cut dropped
        let (r2, _) = r.regraft_with_delta(NodeId(1), NodeId(2)).unwrap();
        assert!(!r2.is_severed(NodeId(0), NodeId(2)));
        assert_eq!(r2.severed_links().count(), 1, "only (2,3) remains");
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::from_edges(1, &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.median(), NodeId(0));
        assert!(t.neighbors(NodeId(0)).is_empty());
    }
}
