//! Topology builders, including the SensorScope-style clustered layout of
//! the paper's experiments (§VI-A): "we emulate the real deployment setup by
//! grouping nodes with sensors from the same base station in a vicinity,
//! such that they are neighbors".

use crate::topology::{NodeId, Topology};
use fsf_model::Point;
use rand::Rng;

/// Build a line `0 — 1 — … — n−1`.
#[must_use]
pub fn line(n: usize) -> Topology {
    assert!(n >= 1);
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    Topology::from_edges(n, &edges).expect("line is a tree")
}

/// Build a star with `hub` 0 and `n − 1` leaves.
#[must_use]
pub fn star(n: usize) -> Topology {
    assert!(n >= 1);
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    Topology::from_edges(n, &edges).expect("star is a tree")
}

/// Build a balanced tree: node `i ≥ 1` attaches to `(i − 1) / branching`.
#[must_use]
pub fn balanced(n: usize, branching: usize) -> Topology {
    assert!(n >= 1 && branching >= 1);
    let edges: Vec<(u32, u32)> = (1..n as u32)
        .map(|i| ((i - 1) / branching as u32, i))
        .collect();
    Topology::from_edges(n, &edges).expect("balanced is a tree")
}

/// Build a random recursive tree: node `i ≥ 1` attaches to a uniformly
/// random earlier node. Deterministic given the RNG state.
#[must_use]
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Topology {
    assert!(n >= 1);
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (rng.gen_range(0..i), i)).collect();
    Topology::from_edges(n, &edges).expect("random recursive tree is a tree")
}

/// The experiment layout: a relay backbone with per-group base stations,
/// each with its sensor nodes attached, and geographic coordinates assigned
/// to every node.
///
/// Node id layout (deterministic):
/// * `0 .. backbone` — backbone nodes (relays). The first `groups` of them
///   are the *gateways* (base stations); subscriptions are injected at
///   backbone nodes.
/// * `backbone .. backbone + groups·sensors_per_group` — sensor nodes,
///   group-major (all of group 0, then group 1, …). Within a group the
///   sensor nodes form a **chain** hanging off the gateway — the paper
///   groups "nodes with sensors from the same base station in a vicinity,
///   such that they are neighbors", which is what lets subscriptions keep
///   splitting (and coverage keep saving hops) *inside* a station.
#[derive(Debug, Clone)]
pub struct ClusteredLayout {
    /// The resulting tree.
    pub topology: Topology,
    /// Gateways, one per group (`gateways[g]` hosts group `g`).
    pub gateways: Vec<NodeId>,
    /// Backbone nodes that are not gateways (candidate user nodes).
    pub relays: Vec<NodeId>,
    /// Sensor nodes per group.
    pub sensor_nodes: Vec<Vec<NodeId>>,
    /// Geographic position of every node (metres).
    pub positions: Vec<Point>,
    /// Geographic centre of each group's vicinity.
    pub group_centers: Vec<Point>,
    /// Radius of each group's vicinity (metres).
    pub group_radius: f64,
}

impl ClusteredLayout {
    /// Total number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Is the layout empty (never true for constructed layouts)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// All nodes that host sensors, group-major.
    pub fn all_sensor_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sensor_nodes.iter().flatten().copied()
    }

    /// Backbone nodes where users may attach: every backbone node
    /// (gateways included), matching the paper's small-scale setting where
    /// the 60-node network is exactly gateways + sensor nodes.
    #[must_use]
    pub fn user_nodes(&self) -> Vec<NodeId> {
        let mut v = self.relays.clone();
        v.extend(&self.gateways);
        v.sort_unstable();
        v
    }
}

/// Build a clustered SensorScope-style layout.
///
/// * `groups` — number of base stations (10 or 20 in the paper);
/// * `sensors_per_group` — sensors attached to each base station (5: one per
///   measurement type);
/// * `total_nodes` — overall network size (60/100/200 in the paper). Must be
///   at least `groups · (sensors_per_group + 1)`; the surplus becomes relay
///   backbone nodes.
///
/// The backbone (gateways + relays) forms a random recursive tree;
/// group vicinities are placed on a jittered grid, sensors uniformly inside
/// their vicinity. Deterministic given the RNG.
#[must_use]
pub fn clustered<R: Rng + ?Sized>(
    groups: usize,
    sensors_per_group: usize,
    total_nodes: usize,
    rng: &mut R,
) -> ClusteredLayout {
    assert!(groups >= 1);
    let sensors_total = groups * sensors_per_group;
    assert!(
        total_nodes >= sensors_total + groups,
        "need at least one gateway per group: {total_nodes} < {}",
        sensors_total + groups
    );
    let backbone = total_nodes - sensors_total;

    // Backbone tree over nodes 0..backbone.
    let mut edges: Vec<(u32, u32)> = (1..backbone as u32)
        .map(|i| (rng.gen_range(0..i), i))
        .collect();
    // Gateways are spread over the backbone ids to avoid all groups sharing
    // one hub: take evenly spaced backbone ids.
    let gateways: Vec<NodeId> = (0..groups)
        .map(|g| NodeId((g * backbone / groups) as u32))
        .collect();
    let mut is_gateway = vec![false; backbone];
    for g in &gateways {
        is_gateway[g.0 as usize] = true;
    }
    let relays: Vec<NodeId> = (0..backbone as u32)
        .map(NodeId)
        .filter(|n| !is_gateway[n.0 as usize])
        .collect();

    // Sensor nodes chain off their gateway: gateway — s₀ — s₁ — … .
    let mut sensor_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(groups);
    let mut next = backbone as u32;
    for gateway in &gateways {
        let mut members = Vec::with_capacity(sensors_per_group);
        let mut prev = gateway.0;
        for _ in 0..sensors_per_group {
            edges.push((prev, next));
            members.push(NodeId(next));
            prev = next;
            next += 1;
        }
        sensor_nodes.push(members);
    }
    let topology = Topology::from_edges(total_nodes, &edges).expect("clustered layout is a tree");

    // Geography: vicinities on a jittered grid, 2 km apart, 150 m radius —
    // loosely modelled on the Grand St. Bernard deployment footprint.
    let group_radius = 150.0;
    let cell = 2_000.0;
    let cols = (groups as f64).sqrt().ceil() as usize;
    let group_centers: Vec<Point> = (0..groups)
        .map(|g| {
            let (cx, cy) = ((g % cols) as f64, (g / cols) as f64);
            Point::new(
                cx * cell + rng.gen_range(-200.0..200.0),
                cy * cell + rng.gen_range(-200.0..200.0),
            )
        })
        .collect();

    let mut positions = vec![Point::new(0.0, 0.0); total_nodes];
    for (g, &gw) in gateways.iter().enumerate() {
        positions[gw.0 as usize] = group_centers[g];
        for &sn in &sensor_nodes[g] {
            positions[sn.0 as usize] = Point::new(
                group_centers[g].x + rng.gen_range(-group_radius..group_radius) * 0.7,
                group_centers[g].y + rng.gen_range(-group_radius..group_radius) * 0.7,
            );
        }
    }
    // Relays sit between their tree neighbors; geography is cosmetic for
    // them (no sensors), place them at the overall centroid with jitter.
    let centroid = Point::new(
        group_centers.iter().map(|p| p.x).sum::<f64>() / groups as f64,
        group_centers.iter().map(|p| p.y).sum::<f64>() / groups as f64,
    );
    for r in &relays {
        positions[r.0 as usize] = Point::new(
            centroid.x + rng.gen_range(-500.0..500.0),
            centroid.y + rng.gen_range(-500.0..500.0),
        );
    }

    ClusteredLayout {
        topology,
        gateways,
        relays,
        sensor_nodes,
        positions,
        group_centers,
        group_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_star_balanced_shapes() {
        assert_eq!(line(5).distance(NodeId(0), NodeId(4)), 4);
        assert_eq!(star(5).distance(NodeId(1), NodeId(4)), 2);
        let b = balanced(7, 2);
        assert_eq!(b.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(b.distance(NodeId(3), NodeId(6)), 4);
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let t1 = random_tree(50, &mut StdRng::seed_from_u64(9));
        let t2 = random_tree(50, &mut StdRng::seed_from_u64(9));
        let t3 = random_tree(50, &mut StdRng::seed_from_u64(10));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(t1.len(), 50);
    }

    #[test]
    fn clustered_small_scale_dimensions() {
        // the paper's small scale: 60 nodes, 10 groups x 5 sensors
        let mut rng = StdRng::seed_from_u64(1);
        let l = clustered(10, 5, 60, &mut rng);
        assert_eq!(l.len(), 60);
        assert_eq!(l.gateways.len(), 10);
        assert_eq!(
            l.relays.len(),
            0,
            "60 = 50 sensors + 10 gateways, no spare relays"
        );
        assert_eq!(l.all_sensor_nodes().count(), 50);
        assert_eq!(l.user_nodes().len(), 10);
        // group members chain off the gateway: first member neighbors the
        // gateway, the last member is a leaf
        for (g, members) in l.sensor_nodes.iter().enumerate() {
            assert!(l.topology.neighbors(members[0]).contains(&l.gateways[g]));
            assert_eq!(l.topology.degree(*members.last().unwrap()), 1);
            for w in members.windows(2) {
                assert!(l.topology.neighbors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn clustered_medium_has_relays() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = clustered(10, 5, 100, &mut rng);
        assert_eq!(l.len(), 100);
        assert_eq!(l.relays.len(), 40);
        assert_eq!(l.user_nodes().len(), 50);
    }

    #[test]
    fn clustered_sensor_positions_are_in_vicinity() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = clustered(10, 5, 100, &mut rng);
        for (g, members) in l.sensor_nodes.iter().enumerate() {
            for &sn in members {
                let d = l.positions[sn.0 as usize].distance(&l.group_centers[g]);
                assert!(d <= l.group_radius * 1.5, "sensor {sn} too far: {d}");
            }
        }
    }

    #[test]
    fn clustered_rejects_too_small_networks() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clustered(10, 5, 55, &mut rng)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn gateways_are_distinct_backbone_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = clustered(20, 5, 200, &mut rng);
        let mut g = l.gateways.clone();
        g.sort_unstable();
        g.dedup();
        assert_eq!(g.len(), 20);
        assert!(
            g.iter().all(|n| (n.0 as usize) < 100),
            "gateways live on the backbone"
        );
    }
}
