//! Deterministic discrete-event message simulator.
//!
//! The simulator processes messages from a timestamped priority queue: each
//! send is scheduled `LatencyModel::delay(from, to)` virtual ticks into the
//! future, and the queue pops in `(deliver_at, seq)` order, where `seq` is a
//! global monotone sequence number assigned at scheduling time.
//!
//! **Event-clock semantics.** The virtual clock [`Simulator::now`] only
//! moves forward, to the `deliver_at` of the message being processed (or to
//! the explicit horizon of [`Simulator::run_until`]). Nodes observe it
//! through [`Ctx::now`]. Virtual time is a *network* notion (message
//! propagation); the data-level `Timestamp`s carried inside events are a
//! separate axis (correlation windows) and are never reinterpreted.
//!
//! **Tie-breaking rule.** Messages due at the same tick are processed in
//! scheduling order (`seq` ascending). This makes the whole timeline a
//! deterministic function of the injection sequence and the latency model —
//! no hash-map iteration order, no randomness.
//!
//! **Zero-latency compat guarantee.** Under [`LatencyModel::Zero`] every
//! message is due immediately, so the `(deliver_at, seq)` order degenerates
//! to `seq` order — exactly the FIFO order of the pre-scheduler simulator.
//! `tests/fifo_compat.rs` holds this step-for-step, delivery-for-delivery
//! across 30 seeded workloads.
//!
//! The paper's metrics are traffic counts, which are latency-independent;
//! the scheduler adds the response-time axis (delivery latency percentiles
//! via [`DeliveryLog::latency_summary`]) and makes churn racing in-flight
//! floods simulable. Every behaviour implemented against [`NodeBehavior`]
//! also runs unmodified on real OS threads via `fsf-runtime`, which provides
//! the concurrency the paper's Xen testbed had; the simulator provides the
//! determinism the evaluation needs.

use crate::latency::{LatencyModel, LatencySummary};
use crate::topology::{NodeId, RegraftDelta, Topology, TopologyError};
use crate::traffic::{ChargeKind, TrafficStats};
use fsf_model::{ComplexEvent, EventId, SubId};
use fsf_telemetry::{flood_id, Noop, TelemetryEvent, TelemetrySink, TrafficClass};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// The node-logic trait implemented by every engine (FSF and the four
/// baselines).
pub trait NodeBehavior {
    /// The engine's wire message type.
    type Msg: Clone + std::fmt::Debug;

    /// Handle one message. `from == ctx.node()` signals a locally injected
    /// item (the paper's `n == m` case: a local user subscription, a local
    /// sensor reading, or a local sensor appearing).
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// The topology changed around this node (a crashed neighbor's subtree
    /// was re-grafted). Nodes with precomputed routing state (e.g. the
    /// centralized baseline's next-hop table) refresh it here; the default
    /// is a no-op because the pub/sub family reads `ctx.neighbors()` fresh
    /// on every message. Always invoked immediately at the crash (stale
    /// next-hop tables would route into walls); the *recovery protocol*
    /// runs separately through [`Self::on_recover`], which may be deferred.
    fn on_topology_change(&mut self, _topology: &Topology) {}

    /// Run this node's part of the crash-recovery protocol for one
    /// `crash + regraft` event: purge per-origin state that referenced the
    /// crashed neighbor, and (for nodes hosting data sources) re-flood
    /// advertisements over the re-grafted tree. Invoked through
    /// [`Simulator::run_recovery`] with a live [`Ctx`], so recovery traffic
    /// is scheduled on the virtual clock and races in-flight floods like
    /// any other message. The default is a no-op (test behaviours, plain
    /// relays).
    fn on_recover(&mut self, _delta: &RegraftDelta, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// A severed link to `peer` was healed: the partitions on each side of
    /// the cut diverged (floods dropped at the cut), so reconcile across
    /// the revived edge — re-offer advertisements/generations and re-split
    /// operators toward `peer`. Invoked through [`Simulator::heal_link`]
    /// with a live [`Ctx`] on *both* endpoints, so reconciliation traffic
    /// rides the virtual clock like recovery traffic. Default is a no-op.
    fn on_link_up(&mut self, _peer: NodeId, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// What a node may do while handling a message: send to neighbors, deliver
/// results to its local users, and read the virtual clock.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    now: u64,
    outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
    deliveries: &'a mut DeliveryLog,
}

impl<'a, M> Ctx<'a, M> {
    /// Construct a context for an external executor (e.g. the threaded
    /// runtime in `fsf-runtime`) that drives [`NodeBehavior`] outside the
    /// simulator. The executor owns the outbox and delivery log and is
    /// responsible for dispatching/charging the drained sends; `now` is its
    /// notion of virtual time (0 for wall-clock executors without one).
    #[must_use]
    pub fn external(
        node: NodeId,
        neighbors: &'a [NodeId],
        now: u64,
        outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
        deliveries: &'a mut DeliveryLog,
    ) -> Self {
        Ctx {
            node,
            neighbors,
            now,
            outbox,
            deliveries,
        }
    }

    /// The node executing.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's neighbors (sorted).
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// The virtual clock: the `deliver_at` of the message being handled.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Send `msg` to neighbor `to`, charging `units` of `kind` traffic on
    /// the link. Panics if `to` is not a neighbor — the system model only
    /// has local interaction.
    pub fn send(&mut self, to: NodeId, msg: M, kind: ChargeKind, units: u64) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "{} is not a neighbor of {}",
            to,
            self.node
        );
        self.outbox.push((to, msg, kind, units));
    }

    /// Deliver a complex event to a local user's subscription.
    pub fn deliver(&mut self, sub: SubId, event: &ComplexEvent) {
        self.deliveries.record_at(sub, event, self.now);
    }
}

/// Results delivered to end users, as needed for the recall metric
/// (§VI-F): per subscription, the set of simple events that reached the
/// user inside at least one delivered complex event — plus, per delivery,
/// the virtual-time latency from reading injection to delivery.
///
/// Equality compares the *delivered results* only (`per_sub` sets and the
/// delivery count), not the latency samples: two engines can deliver the
/// identical result sets at different speeds, and the equivalence tests
/// compare logs across engines.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    per_sub: BTreeMap<SubId, BTreeSet<EventId>>,
    complex_deliveries: u64,
    /// Virtual injection time per simple event, registered by the engine
    /// wrapper when the reading enters the network.
    injected_at: BTreeMap<EventId, u64>,
    /// One sample per complex delivery whose constituents have a known
    /// injection time: delivery tick − injection tick of the *latest*
    /// injected constituent (the reading that completed the match).
    latencies: Vec<u64>,
    /// Deliveries recorded before their constituents' injection times were
    /// locally known: the live hosts record into short-lived per-task logs
    /// while injections register on the shared log. Each entry resolves
    /// into a latency sample when [`DeliveryLog::merge`] (or the sharded
    /// drain) unites it with the injection registry.
    pending: Vec<(Vec<EventId>, u64)>,
}

impl PartialEq for DeliveryLog {
    fn eq(&self, other: &Self) -> bool {
        self.per_sub == other.per_sub && self.complex_deliveries == other.complex_deliveries
    }
}

impl Eq for DeliveryLog {}

impl DeliveryLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the virtual time a simple event was injected at (enables
    /// latency accounting for deliveries containing it).
    pub fn note_injection(&mut self, event: EventId, at: u64) {
        self.injected_at.entry(event).or_insert(at);
    }

    /// Record one delivered complex event, without timing (compat shortcut
    /// for executors with no virtual clock).
    pub fn record(&mut self, sub: SubId, event: &ComplexEvent) {
        self.record_at(sub, event, 0);
    }

    /// Record one complex event delivered at virtual time `at`.
    pub fn record_at(&mut self, sub: SubId, event: &ComplexEvent, at: u64) {
        self.complex_deliveries += 1;
        if let Some(injected) = event
            .event_ids()
            .filter_map(|id| self.injected_at.get(&id).copied())
            .max()
        {
            self.latencies.push(at.saturating_sub(injected));
        } else {
            self.pending.push((event.event_ids().collect(), at));
        }
        self.per_sub
            .entry(sub)
            .or_default()
            .extend(event.event_ids());
    }

    /// Simple events delivered for `sub` (empty set if none).
    #[must_use]
    pub fn delivered(&self, sub: SubId) -> &BTreeSet<EventId> {
        static EMPTY: BTreeSet<EventId> = BTreeSet::new();
        self.per_sub.get(&sub).unwrap_or(&EMPTY)
    }

    /// Number of `deliver` calls (complex events, duplicates included).
    #[must_use]
    pub fn complex_deliveries(&self) -> u64 {
        self.complex_deliveries
    }

    /// Raw delivery-latency samples (virtual ticks), in delivery order.
    #[must_use]
    pub fn latency_samples(&self) -> &[u64] {
        &self.latencies
    }

    /// p50/p95/max of the delivery latencies observed so far.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.latencies)
    }

    /// Subscriptions with at least one delivery.
    pub fn subs(&self) -> impl Iterator<Item = SubId> + '_ {
        self.per_sub.keys().copied()
    }

    /// Total distinct (subscription, simple event) delivery pairs.
    #[must_use]
    pub fn total_event_units(&self) -> u64 {
        self.per_sub.values().map(|s| s.len() as u64).sum()
    }

    /// Move this log's *results* (per-sub sets, delivery count, latency
    /// samples) into `target`, leaving injection times behind so future
    /// deliveries keep their latency anchor. The sharded simulator drains
    /// per-shard logs into the merged log with this after every pump.
    pub(crate) fn drain_into(&mut self, target: &mut DeliveryLog) {
        target.complex_deliveries += self.complex_deliveries;
        self.complex_deliveries = 0;
        for (sub, events) in std::mem::take(&mut self.per_sub) {
            target.per_sub.entry(sub).or_default().extend(events);
        }
        target.latencies.append(&mut self.latencies);
        target.pending.append(&mut self.pending);
        target.resolve_pending();
    }

    /// Fold another log into this one (used by multi-executor runtimes).
    ///
    /// *Draining*: the other log's results — delivery count, per-sub sets,
    /// latency samples and pending entries — move out, so merging the same
    /// log twice is idempotent. (The old copying merge double-counted
    /// latency samples when a host log with overlapping pending sets was
    /// merged twice.) Only the injection registry stays behind in `other`:
    /// it is keyed/or-inserted, so re-merging it cannot double anything,
    /// and the source log keeps its latency anchor for later deliveries.
    pub fn merge(&mut self, other: &mut DeliveryLog) {
        self.complex_deliveries += other.complex_deliveries;
        other.complex_deliveries = 0;
        for (sub, events) in std::mem::take(&mut other.per_sub) {
            self.per_sub.entry(sub).or_default().extend(events);
        }
        for (&id, &at) in &other.injected_at {
            self.injected_at.entry(id).or_insert(at);
        }
        self.latencies.append(&mut other.latencies);
        self.pending.append(&mut other.pending);
        self.resolve_pending();
    }

    /// Convert pending deliveries whose constituents are now registered
    /// into latency samples; the rest stay pending for a later merge.
    fn resolve_pending(&mut self) {
        let mut unresolved = Vec::new();
        for (ids, at) in self.pending.drain(..) {
            match ids
                .iter()
                .filter_map(|id| self.injected_at.get(id).copied())
                .max()
            {
                Some(injected) => self.latencies.push(at.saturating_sub(injected)),
                None => unresolved.push((ids, at)),
            }
        }
        self.pending = unresolved;
    }
}

/// What travels on a link: an application message, or one leg of the
/// liveness layer's heartbeat exchange. Pings and pongs ride the same
/// scheduler (latency, severed links, crash drops all apply — that is what
/// makes the suspicion signal honest) but are answered *below*
/// [`NodeBehavior`]: node logic never sees them.
#[derive(Debug, Clone)]
enum Payload<M> {
    App(M),
    Ping,
    Pong,
}

#[derive(Debug, Clone)]
struct Envelope<M> {
    from: NodeId,
    to: NodeId,
    /// Causality id: minted at injection, inherited by every send made
    /// while handling a message carrying it (see [`fsf_telemetry::flood_id`]).
    flood: u64,
    msg: Payload<M>,
}

/// Heartbeat failure-detector state (tentpole of the liveness layer). All
/// bookkeeping is *directed*: `(observer, peer)` — node `observer`'s view
/// of neighbor `peer`. Suspicion never mutates node or routing state; it
/// only feeds [`Simulator::take_confirmed_dead`], which the engine layer
/// intersects with actual crash deltas — a false suspicion (e.g. a live
/// node behind a severed link) therefore cannot cause route loss, and is
/// cleared the moment a pong gets through again.
#[derive(Debug)]
struct Liveness {
    period: u64,
    timeout: u64,
    /// Virtual time liveness was enabled: the freshness baseline for pairs
    /// that have never exchanged a pong.
    enabled_at: u64,
    /// Next beat tick: every live node pings every neighbor.
    next_beat: u64,
    /// `(observer, peer)` → virtual time of the last pong heard.
    last_seen: BTreeMap<(NodeId, NodeId), u64>,
    /// Directed suspicions currently active.
    suspected: BTreeSet<(NodeId, NodeId)>,
    /// Nodes every live neighbor currently suspects, not yet drained by
    /// [`Simulator::take_confirmed_dead`].
    confirmed: Vec<NodeId>,
    /// Everything ever confirmed (until a pong re-admits it) — keeps a
    /// dead node from being re-confirmed every beat.
    confirmed_ever: BTreeSet<NodeId>,
}

/// A scheduled envelope. Heap order: earliest `deliver_at` first, ties
/// broken by scheduling sequence (`seq` ascending) — the determinism rule.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    deliver_at: u64,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // reversed: BinaryHeap is a max-heap, we pop the earliest message
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Deterministic discrete-event simulator over a tree of [`NodeBehavior`]
/// nodes. Defaults to [`LatencyModel::Zero`], which reproduces the classic
/// run-to-quiescence FIFO semantics exactly (see the module docs).
///
/// The `S` parameter is the telemetry sink; it defaults to
/// [`fsf_telemetry::Noop`], whose `ENABLED = false` lets every recording
/// site compile away — the disabled simulator is byte-for-byte the old one.
/// Build with [`Simulator::with_sink`] and a
/// [`fsf_telemetry::Recorder`] to capture the message lifecycle.
#[derive(Debug)]
pub struct Simulator<B: NodeBehavior, S: TelemetrySink = Noop> {
    topology: Topology,
    nodes: Vec<B>,
    queue: BinaryHeap<Scheduled<B::Msg>>,
    latency: LatencyModel,
    sink: S,
    /// Accumulated traffic counters.
    pub stats: TrafficStats,
    /// Accumulated end-user deliveries.
    pub deliveries: DeliveryLog,
    now: u64,
    next_seq: u64,
    steps: u64,
    scheduled_total: u64,
    queue_drops: u64,
    max_steps_per_run: u64,
    /// Downed nodes, mapped to the `next_seq` value at their crash: queued
    /// messages with a smaller seq were purge-counted at crash time and pop
    /// as silent tombstones; later seqs are charged-but-dropped arrivals.
    down: BTreeMap<NodeId, u64>,
    dropped_to_downed: u64,
    /// Queued-message count per destination node — the crash purge reads
    /// (and zeroes) one slot instead of rebuilding the whole heap.
    queued_to: Vec<u32>,
    /// Messages still in the heap whose drop was already accounted at a
    /// crash. Excluded from [`Self::queue_depth`]; discarded silently at pop.
    tombstones: u64,
    /// Messages dropped at the radio because their link was severed.
    dropped_severed: u64,
    /// Heartbeat failure detector, off by default (zero overhead when off).
    liveness: Option<Liveness>,
}

impl<B: NodeBehavior> Simulator<B> {
    /// Build a zero-latency simulator, constructing one node per topology
    /// id.
    pub fn new(topology: Topology, make_node: impl FnMut(NodeId, &Topology) -> B) -> Self {
        Self::with_latency(topology, LatencyModel::Zero, make_node)
    }

    /// Build a simulator with an explicit latency model.
    pub fn with_latency(
        topology: Topology,
        latency: LatencyModel,
        make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        Self::with_sink(topology, latency, Noop, make_node)
    }
}

impl<B: NodeBehavior, S: TelemetrySink> Simulator<B, S> {
    /// Default per-run step budget; exceeding it panics (a forwarding loop
    /// would otherwise spin forever).
    pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

    /// Build a simulator with an explicit latency model and telemetry sink.
    pub fn with_sink(
        topology: Topology,
        latency: LatencyModel,
        sink: S,
        mut make_node: impl FnMut(NodeId, &Topology) -> B,
    ) -> Self {
        let nodes = topology
            .nodes()
            .map(|id| make_node(id, &topology))
            .collect();
        let queued_to = vec![0u32; topology.len()];
        Simulator {
            topology,
            nodes,
            queue: BinaryHeap::new(),
            latency,
            sink,
            stats: TrafficStats::new(),
            deliveries: DeliveryLog::new(),
            now: 0,
            next_seq: 0,
            steps: 0,
            scheduled_total: 0,
            queue_drops: 0,
            max_steps_per_run: Self::DEFAULT_MAX_STEPS,
            down: BTreeMap::new(),
            dropped_to_downed: 0,
            queued_to,
            tombstones: 0,
            dropped_severed: 0,
            liveness: None,
        }
    }

    /// Tear a pristine simulator apart for backend switching (see
    /// `shard::Backend::set_shards`): the topology, latency model, node
    /// states and sink move out; queued messages and counters are
    /// discarded, so callers must only do this before any traffic is
    /// scheduled.
    pub(crate) fn into_parts(self) -> (Topology, LatencyModel, Vec<B>, S) {
        (self.topology, self.latency, self.nodes, self.sink)
    }

    /// The attached telemetry sink.
    pub(crate) fn sink(&self) -> &S {
        &self.sink
    }

    /// Rebuild from parts produced by [`Self::into_parts`] (node order must
    /// match topology id order).
    pub(crate) fn from_parts(
        topology: Topology,
        latency: LatencyModel,
        nodes: Vec<B>,
        sink: S,
    ) -> Self {
        assert_eq!(nodes.len(), topology.len(), "one node per topology id");
        let queued_to = vec![0u32; topology.len()];
        Simulator {
            topology,
            nodes,
            queue: BinaryHeap::new(),
            latency,
            sink,
            stats: TrafficStats::new(),
            deliveries: DeliveryLog::new(),
            now: 0,
            next_seq: 0,
            steps: 0,
            scheduled_total: 0,
            queue_drops: 0,
            max_steps_per_run: Self::DEFAULT_MAX_STEPS,
            down: BTreeMap::new(),
            dropped_to_downed: 0,
            queued_to,
            tombstones: 0,
            dropped_severed: 0,
            liveness: None,
        }
    }

    // No mid-run latency-model setter on purpose: swapping to a faster
    // model while messages are in flight could let a later send overtake
    // an earlier one on the same link, breaking the per-link FIFO
    // invariant the retraction protocols rely on. Construct a new
    // simulator instead.

    /// Override the runaway-protection step budget.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps_per_run = max;
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state (for inspection in tests).
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids — churn plans make
    /// out-of-range ids a realistic mistake.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &B {
        let n = self.topology.len();
        self.nodes
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})"))
    }

    /// Mutable access to a node's state.
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids (see [`Self::node`]).
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        let n = self.topology.len();
        self.nodes
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})"))
    }

    /// Is the node marked down (crashed)?
    #[must_use]
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down.contains_key(&id)
    }

    /// Messages dropped because their destination was down — the simulator's
    /// fault-injection counter (covers injections at downed nodes, queued
    /// messages purged when their destination crashed, and in-flight
    /// messages arriving at a corpse).
    #[must_use]
    pub fn dropped_to_downed(&self) -> u64 {
        self.dropped_to_downed
    }

    /// Messages dropped at the sender's radio because the link they would
    /// cross is severed. Included in [`Self::dropped_from_queue`], so the
    /// conservation invariant stays exact across partitions.
    #[must_use]
    pub fn dropped_severed(&self) -> u64 {
        self.dropped_severed
    }

    /// Sever the link between two adjacent nodes (partition): from now on,
    /// traffic crossing it is dropped at the radio with conservation
    /// accounting. Messages already in flight on the link were on the wire
    /// before the cut and still arrive. Routing state is untouched — both
    /// halves keep serving whatever is reachable on their side.
    pub fn sever_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        self.topology.sever_link(a, b)?;
        if S::ENABLED {
            self.sink.record(TelemetryEvent::LinkSevered {
                at: self.now,
                a: a.0,
                b: b.0,
            });
        }
        Ok(())
    }

    /// Heal a severed link and run [`NodeBehavior::on_link_up`] on both
    /// live endpoints with a live [`Ctx`]: the reconciliation traffic they
    /// emit (advertisement re-offers, generation repairs, operator
    /// re-splits) is charged and scheduled on the virtual clock. Healing a
    /// healthy link is a validated no-op.
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        let was_severed = self.topology.is_severed(a, b);
        self.topology.heal_link(a, b)?;
        if !was_severed {
            return Ok(());
        }
        if S::ENABLED {
            self.sink.record(TelemetryEvent::LinkHealed {
                at: self.now,
                a: a.0,
                b: b.0,
            });
        }
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        for (node, peer) in [(a, b), (b, a)] {
            if self.down.contains_key(&node) {
                continue;
            }
            {
                let mut ctx = Ctx {
                    node,
                    neighbors: self.topology.neighbors(node),
                    now: self.now,
                    outbox: &mut outbox,
                    deliveries: &mut self.deliveries,
                };
                self.nodes[node.0 as usize].on_link_up(peer, &mut ctx);
            }
            for (to, msg, kind, units) in outbox.drain(..) {
                self.stats.charge(kind, node, to, units);
                let deliver_at = self.now + self.latency.delay(node, to);
                // reconciliation sends start fresh causal floods
                let flood = flood_id(0, self.next_seq);
                self.schedule(
                    node,
                    to,
                    Payload::App(msg),
                    deliver_at,
                    flood,
                    kind.traffic_class(),
                    units,
                );
            }
        }
        Ok(())
    }

    /// Enable the heartbeat failure detector: every `period` virtual ticks
    /// each live node pings every neighbor; a neighbor whose pong has not
    /// been heard for more than `timeout` ticks is suspected. A node all
    /// of whose live neighbors suspect it is reported through
    /// [`Self::take_confirmed_dead`]. Suspicion never mutates node state —
    /// false suspicions (live nodes behind a severed link) clear themselves
    /// when a pong next gets through.
    ///
    /// Pick `timeout ≥ period + 2 × max link delay` to avoid false
    /// suspicion on healthy links.
    pub fn set_liveness(&mut self, period: u64, timeout: u64) {
        assert!(period > 0, "heartbeat period must be positive");
        assert!(timeout > 0, "suspicion timeout must be positive");
        self.liveness = Some(Liveness {
            period,
            timeout,
            enabled_at: self.now,
            next_beat: self.now + period,
            last_seen: BTreeMap::new(),
            suspected: BTreeSet::new(),
            confirmed: Vec::new(),
            confirmed_ever: BTreeSet::new(),
        });
    }

    /// Currently active directed suspicions, `(observer, suspect)` sorted.
    #[must_use]
    pub fn suspicions(&self) -> Vec<(NodeId, NodeId)> {
        self.liveness
            .as_ref()
            .map(|lv| lv.suspected.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drain the nodes newly confirmed dead by the failure detector (every
    /// live neighbor suspects them). The engine layer intersects these
    /// with its crash records before triggering recovery, so a falsely
    /// confirmed-but-alive node (a partitioned leaf) costs nothing.
    pub fn take_confirmed_dead(&mut self) -> Vec<NodeId> {
        self.liveness
            .as_mut()
            .map(|lv| std::mem::take(&mut lv.confirmed))
            .unwrap_or_default()
    }

    /// The virtual clock: the latest delivery tick processed (or horizon
    /// passed to [`Self::run_until`]). Never decreases.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Messages currently scheduled but not yet delivered. Tombstones —
    /// messages purged by a crash but physically still in the heap — are
    /// excluded: they are already accounted in [`Self::dropped_from_queue`].
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len() - self.tombstones as usize
    }

    /// Every envelope ever enqueued (injections at live nodes + sends).
    /// Together with [`Self::steps`], [`Self::dropped_from_queue`] and
    /// [`Self::queue_depth`] this forms the message-conservation invariant:
    /// `scheduled_total == steps + dropped_from_queue + queue_depth` holds
    /// at every pause point — nothing is lost or duplicated mid-flight.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Enqueued messages that were dropped instead of processed (destination
    /// crashed while they were in flight, or already down at delivery).
    #[must_use]
    pub fn dropped_from_queue(&self) -> u64 {
        self.queue_drops
    }

    /// Crash a node: re-graft its orphaned neighbors onto `anchor` (see
    /// [`Topology::regraft`]), mark it down, drop every queued message
    /// addressed to it, and notify every surviving node of the new topology
    /// via [`NodeBehavior::on_topology_change`]. Messages later sent to the
    /// downed node are charged (they left the sender's radio) but dropped.
    ///
    /// Returns the [`RegraftDelta`] describing what moved — feed it to
    /// [`Self::run_recovery`] to run the crash-recovery protocol
    /// (immediately for auto-recovery, later for a deferred repair).
    pub fn crash_and_regraft(
        &mut self,
        crashed: NodeId,
        anchor: NodeId,
    ) -> Result<RegraftDelta, crate::topology::TopologyError> {
        if self.down.contains_key(&anchor) {
            // re-grafting survivors onto a corpse would black-hole them
            return Err(crate::topology::TopologyError::BadEdge(crashed.0, anchor.0));
        }
        let (topology, delta) = self.topology.regraft_with_delta(crashed, anchor)?;
        self.topology = topology;
        if !self.down.contains_key(&crashed) {
            // Tombstone purge: account every queued message to the corpse
            // now (one counter read), leave the envelopes in the heap, and
            // discard them silently at pop. O(1) against the old
            // take-and-rebuild of the whole heap.
            let purged = u64::from(self.queued_to[crashed.0 as usize]);
            self.queued_to[crashed.0 as usize] = 0;
            self.tombstones += purged;
            self.dropped_to_downed += purged;
            self.queue_drops += purged;
            self.down.insert(crashed, self.next_seq);
            if S::ENABLED && purged > 0 {
                self.sink.record(TelemetryEvent::Purged {
                    at: self.now,
                    node: crashed.0,
                    shard: 0,
                    count: purged,
                });
            }
        }
        for id in 0..self.nodes.len() {
            if !self.down.contains_key(&NodeId(id as u32)) {
                self.nodes[id].on_topology_change(&self.topology);
            }
        }
        Ok(delta)
    }

    /// Run the crash-recovery protocol for one regraft: every surviving
    /// node gets [`NodeBehavior::on_recover`] with a live [`Ctx`] at the
    /// current virtual time, and whatever it sends is charged and scheduled
    /// through the latency model — recovery traffic races in-flight floods
    /// exactly like any other message. Nodes are visited in id order, so
    /// the recovery timeline is deterministic. Does **not** flush: callers
    /// decide whether recovery drains before the next action.
    pub fn run_recovery(&mut self, delta: &RegraftDelta) {
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        for id in 0..self.nodes.len() {
            let node = NodeId(id as u32);
            if self.down.contains_key(&node) {
                continue;
            }
            let deliveries_before = self.deliveries.complex_deliveries();
            {
                let mut ctx = Ctx {
                    node,
                    neighbors: self.topology.neighbors(node),
                    now: self.now,
                    outbox: &mut outbox,
                    deliveries: &mut self.deliveries,
                };
                self.nodes[id].on_recover(delta, &mut ctx);
            }
            let sends = outbox.len() as u64;
            for (to, msg, kind, units) in outbox.drain(..) {
                self.stats.charge(kind, node, to, units);
                let deliver_at = self.now + self.latency.delay(node, to);
                // each recovery send starts a fresh causal flood: it was
                // not triggered by any in-flight message
                let flood = flood_id(0, self.next_seq);
                self.schedule(
                    node,
                    to,
                    Payload::App(msg),
                    deliver_at,
                    flood,
                    kind.traffic_class(),
                    units,
                );
            }
            if S::ENABLED {
                let deliveries = self.deliveries.complex_deliveries() - deliveries_before;
                if deliveries + sends > 0 {
                    self.sink.record(TelemetryEvent::Recovered {
                        at: self.now,
                        node: node.0,
                        shard: 0,
                        deliveries,
                        sends,
                    });
                }
            }
        }
    }

    /// Messages processed (handled by a live node) since construction.
    /// Drops to downed nodes are counted in [`Self::dropped_to_downed`],
    /// not here.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The runaway-protection panic message: the classic one-liner plus a
    /// telemetry snapshot (queue depth, hottest destination, and — when a
    /// recording sink is attached — the last lifecycle events), so a
    /// forwarding loop names its suspects instead of just dying.
    fn runaway_report(&self) -> String {
        let mut msg = format!(
            "simulator exceeded {} steps at virtual time {} with {} messages queued — \
             forwarding loop?",
            self.max_steps_per_run,
            self.now,
            self.queue.len()
        );
        if let Some((node, depth)) = self
            .queued_to
            .iter()
            .enumerate()
            .max_by_key(|&(_, &d)| d)
            .filter(|&(_, &d)| d > 0)
        {
            msg.push_str(&format!(
                "\n  hottest destination: n{node} ({depth} queued)"
            ));
        }
        if S::ENABLED {
            let recent = self.sink.recent(10);
            if !recent.is_empty() {
                msg.push_str("\n  last lifecycle events:");
                for ev in recent {
                    msg.push_str(&format!("\n    {ev:?}"));
                }
            }
        }
        msg
    }

    #[allow(clippy::too_many_arguments)] // one enqueue, fully described
    fn schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Payload<B::Msg>,
        deliver_at: u64,
        flood: u64,
        class: TrafficClass,
        units: u64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        if S::ENABLED {
            self.sink.record(TelemetryEvent::Scheduled {
                at: self.now,
                deliver_at,
                from: from.0,
                to: to.0,
                shard: 0,
                flood,
                class,
                units,
            });
        }
        // A send across a severed link dies at the radio: charged by the
        // caller (it left the sender), accounted as a queue drop so the
        // conservation invariant stays exact, never enqueued.
        if from != to && self.topology.is_severed(from, to) {
            self.queue_drops += 1;
            self.dropped_severed += 1;
            if S::ENABLED {
                self.sink.record(TelemetryEvent::DroppedSevered {
                    at: self.now,
                    from: from.0,
                    to: to.0,
                    shard: 0,
                    flood,
                });
            }
            return;
        }
        self.queued_to[to.0 as usize] += 1;
        self.queue.push(Scheduled {
            deliver_at,
            seq,
            env: Envelope {
                from,
                to,
                flood,
                msg,
            },
        });
    }

    /// Inject a local item (sensor appearance, user subscription, sensor
    /// reading) at `node`, due immediately (at the current virtual time).
    /// The node sees `from == node`. Injections at a downed node are dropped
    /// (and counted) — its users and sensors died with it.
    pub fn inject(&mut self, node: NodeId, msg: B::Msg) {
        self.inject_at(node, msg, self.now);
    }

    /// Inject a local item scheduled for virtual time `at` (clamped to the
    /// present — the clock never runs backwards).
    pub fn inject_at(&mut self, node: NodeId, msg: B::Msg, at: u64) {
        if self.down.contains_key(&node) {
            self.dropped_to_downed += 1;
            return;
        }
        // every injection mints a fresh causal flood id
        let flood = flood_id(0, self.next_seq);
        self.schedule(
            node,
            node,
            Payload::App(msg),
            at.max(self.now),
            flood,
            TrafficClass::Inject,
            1,
        );
    }

    /// Process messages in `(deliver_at, seq)` order until `horizon` (if
    /// any) or quiescence, interleaving heartbeat beats (when liveness is
    /// enabled) at their scheduled ticks. Returns the number of messages
    /// handled. Beats fire whenever the clock would cross their tick —
    /// either because a queued message is due at or after it, or because an
    /// explicit horizon covers it; with an empty queue and no horizon the
    /// pump is quiescent and beats wait for time to be driven forward
    /// (`run_until`), so quiescence stays reachable.
    fn pump(&mut self, horizon: Option<u64>) -> u64 {
        let mut handled = 0u64;
        let mut popped = 0u64;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        loop {
            let head_at = self.queue.peek().map(|s| s.deliver_at);
            if let Some(beat_at) = self.liveness.as_ref().map(|lv| lv.next_beat) {
                let beat_due = match head_at {
                    Some(h) => beat_at <= h,
                    None => horizon.is_some_and(|t| beat_at <= t),
                } && horizon.is_none_or(|t| beat_at <= t);
                if beat_due {
                    self.emit_beat(beat_at);
                    continue;
                }
            }
            let Some(h) = head_at else { break };
            if horizon.is_some_and(|t| h > t) {
                break;
            }
            let sch = self.queue.pop().expect("peeked");
            popped += 1;
            if popped > self.max_steps_per_run {
                panic!("{}", self.runaway_report());
            }
            if let Some(&cutoff) = self.down.get(&sch.env.to) {
                if sch.seq < cutoff {
                    // purge-counted (and removed from queued_to) at the
                    // crash; discard without touching the clock or the
                    // drop counters again
                    self.tombstones -= 1;
                    continue;
                }
                self.queued_to[sch.env.to.0 as usize] -= 1;
                self.now = self.now.max(sch.deliver_at);
                self.dropped_to_downed += 1;
                self.queue_drops += 1;
                if S::ENABLED {
                    self.sink.record(TelemetryEvent::DroppedDowned {
                        at: self.now,
                        to: sch.env.to.0,
                        shard: 0,
                        flood: sch.env.flood,
                    });
                }
                continue;
            }
            self.queued_to[sch.env.to.0 as usize] -= 1;
            self.now = self.now.max(sch.deliver_at);
            let env = sch.env;
            handled += 1;
            let node_idx = env.to.0 as usize;
            let msg = match env.msg {
                Payload::App(msg) => msg,
                Payload::Ping => {
                    // answered below the app layer: the node is alive, so
                    // a pong heads back (dying at the radio if the link
                    // was severed since the ping crossed)
                    self.stats.charge(ChargeKind::Liveness, env.to, env.from, 1);
                    let deliver_at = self.now + self.latency.delay(env.to, env.from);
                    if S::ENABLED {
                        self.sink.record(TelemetryEvent::Handled {
                            at: self.now,
                            from: env.from.0,
                            to: env.to.0,
                            shard: 0,
                            flood: env.flood,
                            deliveries: 0,
                        });
                    }
                    self.schedule(
                        env.to,
                        env.from,
                        Payload::Pong,
                        deliver_at,
                        env.flood,
                        TrafficClass::Liveness,
                        1,
                    );
                    continue;
                }
                Payload::Pong => {
                    if let Some(lv) = &mut self.liveness {
                        lv.last_seen.insert((env.to, env.from), sch.deliver_at);
                        if lv.suspected.remove(&(env.to, env.from)) && S::ENABLED {
                            self.sink.record(TelemetryEvent::SuspicionCleared {
                                at: self.now,
                                by: env.to.0,
                                node: env.from.0,
                            });
                        }
                        if !self.down.contains_key(&env.from) {
                            // a late answer re-admits a falsely confirmed
                            // node — no route was lost, nothing to repair
                            lv.confirmed_ever.remove(&env.from);
                        }
                    }
                    if S::ENABLED {
                        self.sink.record(TelemetryEvent::Handled {
                            at: self.now,
                            from: env.from.0,
                            to: env.to.0,
                            shard: 0,
                            flood: env.flood,
                            deliveries: 0,
                        });
                    }
                    continue;
                }
            };
            let deliveries_before = self.deliveries.complex_deliveries();
            {
                let mut ctx = Ctx {
                    node: env.to,
                    neighbors: self.topology.neighbors(env.to),
                    now: self.now,
                    outbox: &mut outbox,
                    deliveries: &mut self.deliveries,
                };
                self.nodes[node_idx].on_message(env.from, msg, &mut ctx);
            }
            if S::ENABLED {
                self.sink.record(TelemetryEvent::Handled {
                    at: self.now,
                    from: env.from.0,
                    to: env.to.0,
                    shard: 0,
                    flood: env.flood,
                    deliveries: self.deliveries.complex_deliveries() - deliveries_before,
                });
            }
            for (to, msg, kind, units) in outbox.drain(..) {
                self.stats.charge(kind, env.to, to, units);
                let deliver_at = self.now + self.latency.delay(env.to, to);
                // sends inherit the handled message's causal flood id
                self.schedule(
                    env.to,
                    to,
                    Payload::App(msg),
                    deliver_at,
                    env.flood,
                    kind.traffic_class(),
                    units,
                );
            }
        }
        if let Some(t) = horizon {
            self.now = self.now.max(t);
        }
        self.steps += handled;
        handled
    }

    /// Fire one heartbeat beat at tick `t`: every live node pings every
    /// neighbor (severed links eat the ping at the radio — that absence is
    /// the partition signal), then the suspicion sweep marks every
    /// `(observer, peer)` pair whose last pong is older than the timeout
    /// and confirms nodes all of whose live neighbors suspect them.
    fn emit_beat(&mut self, t: u64) {
        self.now = self.now.max(t);
        let n = self.topology.len() as u32;
        for a in (0..n).map(NodeId) {
            if self.down.contains_key(&a) {
                continue;
            }
            let neighbors: Vec<NodeId> = self.topology.neighbors(a).to_vec();
            for b in neighbors {
                self.stats.charge(ChargeKind::Liveness, a, b, 1);
                let deliver_at = self.now + self.latency.delay(a, b);
                let flood = flood_id(0, self.next_seq);
                self.schedule(
                    a,
                    b,
                    Payload::Ping,
                    deliver_at,
                    flood,
                    TrafficClass::Liveness,
                    1,
                );
            }
        }
        let lv = self
            .liveness
            .as_mut()
            .expect("beats only fire with liveness on");
        for a in (0..n).map(NodeId) {
            if self.down.contains_key(&a) {
                continue;
            }
            for &b in self.topology.neighbors(a) {
                let seen = lv.last_seen.get(&(a, b)).copied().unwrap_or(lv.enabled_at);
                if t.saturating_sub(seen) > lv.timeout && lv.suspected.insert((a, b)) && S::ENABLED
                {
                    self.sink.record(TelemetryEvent::Suspected {
                        at: t,
                        by: a.0,
                        node: b.0,
                    });
                }
            }
        }
        for x in (0..n).map(NodeId) {
            if lv.confirmed_ever.contains(&x) {
                continue;
            }
            let mut live_neighbors = 0usize;
            let all_suspect = self.topology.neighbors(x).iter().all(|&nb| {
                if self.down.contains_key(&nb) {
                    return true; // corpses cast no vote
                }
                live_neighbors += 1;
                lv.suspected.contains(&(nb, x))
            });
            if live_neighbors > 0 && all_suspect {
                lv.confirmed_ever.insert(x);
                lv.confirmed.push(x);
            }
        }
        lv.next_beat = t + lv.period;
    }

    /// Process queued messages until the network is quiescent, advancing
    /// the virtual clock through every scheduled delivery. Returns the
    /// number of messages handled by this call.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.pump(None)
    }

    /// Advance virtual time to `t`, delivering exactly the messages due at
    /// or before `t` and leaving later ones in flight. The clock ends at
    /// `max(now, t)` even if nothing was due.
    pub fn run_until(&mut self, t: u64) -> u64 {
        self.pump(Some(t))
    }

    /// Convenience: inject then run to quiescence.
    pub fn inject_and_run(&mut self, node: NodeId, msg: B::Msg) -> u64 {
        self.inject(node, msg);
        self.run_to_quiescence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    /// A flooding test behaviour: every locally injected number floods the
    /// tree; nodes remember what they saw and when.
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
        seen_at: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            self.seen_at.push(ctx.now());
            let me = ctx.node();
            let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
            for n in neighbors {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    #[test]
    fn flood_reaches_every_node_once() {
        let topo = builders::balanced(15, 2);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.inject_and_run(NodeId(7), 42);
        for n in 0..15u32 {
            assert_eq!(sim.node(NodeId(n)).seen, vec![42], "node n{n}");
        }
        // a tree floods over exactly n-1 links (back-edges suppressed)
        assert_eq!(sim.stats.adv_msgs(), 14);
        // zero latency: the virtual clock never moved
        assert_eq!(sim.now(), 0);
    }

    #[test]
    fn quiescence_returns_processed_count() {
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        let processed = sim.inject_and_run(NodeId(0), 1);
        // 1 local + 3 forwards
        assert_eq!(processed, 4);
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.run_to_quiescence(), 0, "already quiescent");
    }

    #[test]
    fn uniform_latency_advances_the_clock_by_distance() {
        // line 0-1-2-3, 5 ticks per hop: the flood front arrives at node k
        // at virtual time 5k
        let topo = builders::line(4);
        let mut sim = Simulator::with_latency(topo, LatencyModel::Uniform { hop: 5 }, |_, _| {
            Flood::default()
        });
        sim.inject_and_run(NodeId(0), 9);
        for k in 0..4u64 {
            assert_eq!(sim.node(NodeId(k as u32)).seen_at, vec![5 * k], "node {k}");
        }
        assert_eq!(sim.now(), 15);
    }

    #[test]
    fn per_link_weights_shape_the_timeline() {
        // star: hub 0, leaves 1..=3; the 0-2 link is slow
        let topo = builders::star(4);
        let model = LatencyModel::per_link(1, [(NodeId(0), NodeId(2), 10)]);
        let mut sim = Simulator::with_latency(topo, model, |_, _| Flood::default());
        sim.inject_and_run(NodeId(1), 5);
        assert_eq!(sim.node(NodeId(0)).seen_at, vec![1]);
        assert_eq!(sim.node(NodeId(3)).seen_at, vec![2]);
        assert_eq!(sim.node(NodeId(2)).seen_at, vec![11], "slow link");
    }

    #[test]
    fn run_until_pauses_mid_flight_without_loss_or_duplication() {
        // the satellite invariant: injecting during a paused in-flight
        // flood neither drops nor duplicates deliveries
        let topo = builders::balanced(15, 2);
        let mut sim = Simulator::with_latency(topo, LatencyModel::Uniform { hop: 3 }, |_, _| {
            Flood::default()
        });
        sim.inject(NodeId(0), 1);
        let first = sim.run_until(4); // root + its two children have seen it
        assert!(first >= 3, "partial advancement handled {first}");
        assert!(sim.queue_depth() > 0, "flood must still be in flight");
        assert_eq!(sim.now(), 4);
        // conservation invariant mid-flight: nothing lost, nothing invented
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
        // inject a second flood while the first is paused in flight
        sim.inject(NodeId(14), 2);
        sim.run_to_quiescence();
        for n in 0..15u32 {
            let mut seen = sim.node(NodeId(n)).seen.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![1, 2], "node n{n} saw each flood exactly once");
        }
        assert_eq!(sim.stats.adv_msgs(), 2 * 14);
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    #[test]
    fn run_until_advances_the_clock_even_when_idle() {
        let topo = builders::line(2);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        assert_eq!(sim.run_until(100), 0);
        assert_eq!(sim.now(), 100);
        // a later injection is due at the advanced clock, and past times
        // clamp forward
        sim.inject_at(NodeId(0), 1, 50);
        sim.run_to_quiescence();
        assert_eq!(sim.node(NodeId(0)).seen_at, vec![100]);
    }

    #[test]
    fn zero_latency_is_fifo_ordered() {
        // two same-tick floods interleave in strict injection order: the
        // seq tie-break reproduces the legacy FIFO trace
        let topo = builders::line(3);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.inject(NodeId(0), 1);
        sim.inject(NodeId(2), 2);
        sim.run_to_quiescence();
        // node 1 hears 1 first (seq order), node 0/2 their local value first
        assert_eq!(sim.node(NodeId(1)).seen, vec![1, 2]);
        assert_eq!(sim.node(NodeId(0)).seen, vec![1, 2]);
        assert_eq!(sim.node(NodeId(2)).seen, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "not a neighbor")]
    fn sending_to_non_neighbor_panics() {
        #[derive(Debug)]
        struct Bad;
        impl NodeBehavior for Bad {
            type Msg = ();
            fn on_message(&mut self, _: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.send(NodeId(3), (), ChargeKind::Event, 1);
            }
        }
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Bad);
        sim.inject_and_run(NodeId(0), ());
    }

    #[derive(Debug)]
    struct PingPong;
    impl NodeBehavior for PingPong {
        type Msg = ();
        fn on_message(&mut self, from: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
            // bounce forever between the two nodes
            let to = if from == ctx.node() {
                ctx.neighbors()[0]
            } else {
                from
            };
            ctx.send(to, (), ChargeKind::Event, 1);
        }
    }

    #[test]
    #[should_panic(expected = "forwarding loop")]
    fn runaway_protection_trips() {
        let topo = builders::line(2);
        let mut sim = Simulator::new(topo, |_, _| PingPong);
        sim.set_max_steps(1000);
        sim.inject_and_run(NodeId(0), ());
    }

    #[test]
    fn runaway_panic_names_the_clock_and_queue_depth() {
        let topo = builders::line(2);
        let mut sim =
            Simulator::with_latency(topo, LatencyModel::Uniform { hop: 2 }, |_, _| PingPong);
        sim.set_max_steps(100);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.inject_and_run(NodeId(0), ());
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("exceeded 100 steps"), "got: {msg}");
        assert!(msg.contains("at virtual time"), "got: {msg}");
        assert!(msg.contains("messages queued"), "got: {msg}");
    }

    #[test]
    fn unknown_node_id_panics_with_named_message() {
        let topo = builders::line(3);
        let sim = Simulator::new(topo, |_, _| Flood::default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.node(NodeId(7));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("unknown NodeId n7"), "got: {msg}");
        assert!(msg.contains("3 nodes"), "got: {msg}");
    }

    #[test]
    fn crashed_node_drops_traffic_but_survivors_reroute() {
        // star: hub 0, leaves 1..4 — crash the hub onto leaf 1
        let topo = builders::star(5);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.crash_and_regraft(NodeId(0), NodeId(1)).unwrap();
        assert!(sim.is_down(NodeId(0)));
        sim.inject_and_run(NodeId(2), 42);
        // the flood reaches every survivor via the new hub (leaf 1)…
        for n in [1u32, 2, 3, 4] {
            assert_eq!(sim.node(NodeId(n)).seen, vec![42], "node n{n}");
        }
        // …and the copy sent to the downed node is charged but dropped
        assert!(sim.node(NodeId(0)).seen.is_empty());
        assert!(sim.dropped_to_downed() >= 1);
        // injections at the corpse are swallowed
        let dropped = sim.dropped_to_downed();
        sim.inject_and_run(NodeId(0), 43);
        assert_eq!(sim.dropped_to_downed(), dropped + 1);
    }

    #[test]
    fn steps_count_handled_messages_not_drops() {
        // line 0-1-2: crash the far end, flood from 0. The copy addressed
        // to the corpse is dropped, not processed — steps must not count it.
        let topo = builders::line(3);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.crash_and_regraft(NodeId(2), NodeId(1)).unwrap();
        let processed = sim.inject_and_run(NodeId(0), 1);
        assert_eq!(processed, 2, "only n0 and n1 handled the flood");
        assert_eq!(sim.steps(), 2);
        assert_eq!(sim.dropped_to_downed(), 1);
        assert_eq!(sim.dropped_from_queue(), 1);
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    #[test]
    fn regrafting_onto_a_downed_anchor_is_rejected() {
        // line 0-1-2-3: down node 1, then try to re-graft node 2's
        // survivors onto the corpse
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.crash_and_regraft(NodeId(1), NodeId(2)).unwrap();
        assert!(sim.crash_and_regraft(NodeId(2), NodeId(1)).is_err());
        // a live anchor still works
        sim.crash_and_regraft(NodeId(2), NodeId(3)).unwrap();
        sim.inject_and_run(NodeId(0), 7);
        assert_eq!(sim.node(NodeId(3)).seen, vec![7], "0 reaches 3 via regraft");
    }

    #[test]
    fn crash_purges_in_flight_messages_to_the_corpse() {
        // pause a flood mid-flight, crash a node the front hasn't reached
        let topo = builders::line(4);
        let mut sim = Simulator::with_latency(topo, LatencyModel::Uniform { hop: 4 }, |_, _| {
            Flood::default()
        });
        sim.inject(NodeId(0), 1);
        sim.run_until(5); // n0 at 0, n1 at 4; the 1→2 copy in flight for t=8
        assert_eq!(sim.queue_depth(), 1);
        sim.crash_and_regraft(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(sim.queue_depth(), 0, "in-flight copy purged");
        assert_eq!(sim.dropped_from_queue(), 1);
        sim.run_to_quiescence();
        // the flood front died with the purged copy — n3 (re-grafted onto
        // n1) never hears it; re-flooding after a crash is the ROADMAP
        // recovery-protocol item, not the scheduler's job
        assert!(sim.node(NodeId(3)).seen.is_empty());
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    /// A behaviour whose recovery action re-floods its own seen values —
    /// the skeleton of the advertisement re-flood protocol.
    #[derive(Debug, Default)]
    struct RecoverFlood {
        seen: Vec<u64>,
        seen_at: Vec<u64>,
        recoveries: Vec<RegraftDelta>,
    }

    impl NodeBehavior for RecoverFlood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            self.seen_at.push(ctx.now());
            let me = ctx.node();
            for n in ctx.neighbors().to_vec() {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
        fn on_recover(&mut self, delta: &RegraftDelta, ctx: &mut Ctx<'_, u64>) {
            self.recoveries.push(delta.clone());
            // re-flood everything this node originated (values == node id)
            let me = ctx.node();
            if self.seen.contains(&u64::from(me.0)) {
                for n in ctx.neighbors().to_vec() {
                    ctx.send(n, u64::from(me.0), ChargeKind::Recovery, 1);
                }
            }
        }
    }

    #[test]
    fn run_recovery_schedules_on_the_virtual_clock_and_charges_recovery() {
        // line 0-1-2-3, 2 ticks per hop; node 0 floods its value, then the
        // relay n1 crashes before the flood passes it
        let topo = builders::line(4);
        let mut sim = Simulator::with_latency(topo, LatencyModel::Uniform { hop: 2 }, |_, _| {
            RecoverFlood::default()
        });
        sim.inject(NodeId(0), 0);
        sim.run_until(1); // n0 handled it; the 0→1 copy is in flight
        let delta = sim.crash_and_regraft(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(delta.orphans, vec![NodeId(0)]);
        sim.run_recovery(&delta);
        // every survivor observed the delta exactly once…
        for n in [0u32, 2, 3] {
            assert_eq!(sim.node(NodeId(n)).recoveries, vec![delta.clone()]);
        }
        assert!(sim.node(NodeId(1)).recoveries.is_empty(), "corpse skipped");
        sim.run_to_quiescence();
        // …and n0's recovery re-flood reached the re-grafted survivors,
        // two hops away on the new tree, at recovery-time + 2 hops
        assert_eq!(sim.node(NodeId(2)).seen, vec![0]);
        assert_eq!(sim.node(NodeId(3)).seen, vec![0]);
        assert_eq!(sim.node(NodeId(2)).seen_at, vec![1 + 2]);
        assert_eq!(sim.node(NodeId(3)).seen_at, vec![1 + 4]);
        assert!(
            sim.stats.recovery_msgs() >= 1,
            "recovery traffic is charged"
        );
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    #[test]
    fn delivery_log_tracks_distinct_simple_events() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        let mut log = DeliveryLog::new();
        log.record(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]));
        log.record(SubId(1), &ComplexEvent::new(vec![ev(2), ev(3)]));
        log.record(SubId(2), &ComplexEvent::new(vec![ev(1)]));
        assert_eq!(log.complex_deliveries(), 3);
        assert_eq!(log.delivered(SubId(1)).len(), 3);
        assert_eq!(log.delivered(SubId(2)).len(), 1);
        assert_eq!(log.delivered(SubId(9)).len(), 0);
        assert_eq!(log.total_event_units(), 4);
        assert_eq!(log.subs().count(), 2);
    }

    #[test]
    fn delivery_latency_measures_injection_to_delivery() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        let mut log = DeliveryLog::new();
        log.note_injection(EventId(1), 100);
        log.note_injection(EventId(2), 130);
        // the delivery at t=142 was completed by event 2 (injected 130)
        log.record_at(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]), 142);
        assert_eq!(log.latency_samples(), &[12]);
        // a delivery with no known constituents contributes no sample
        log.record_at(SubId(1), &ComplexEvent::new(vec![ev(9)]), 500);
        assert_eq!(log.latency_samples().len(), 1);
        let s = log.latency_summary();
        assert_eq!((s.samples, s.p50, s.p95, s.max), (1, 12, 12, 12));
        // equality ignores timing: same results at different speeds compare
        // equal
        let mut other = DeliveryLog::new();
        other.record(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]));
        other.record(SubId(1), &ComplexEvent::new(vec![ev(9)]));
        assert_eq!(log, other);
    }

    #[test]
    fn pending_latencies_resolve_when_merged_with_the_injection_registry() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        // the live hosts' shape: injections register on the shared log,
        // deliveries record into a fresh per-task log that merges back
        let mut shared = DeliveryLog::new();
        shared.note_injection(EventId(1), 100);
        shared.note_injection(EventId(2), 130);
        let mut local = DeliveryLog::new();
        local.record_at(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]), 142);
        assert!(local.latency_samples().is_empty(), "no local registry yet");
        shared.merge(&mut local);
        assert_eq!(shared.latency_samples(), &[12]);
        // a delivery whose constituents were never registered stays
        // sample-less even after the merge
        let mut stray = DeliveryLog::new();
        stray.record_at(SubId(1), &ComplexEvent::new(vec![ev(9)]), 500);
        shared.merge(&mut stray);
        assert_eq!(shared.latency_samples(), &[12]);
        assert_eq!(shared.complex_deliveries(), 2);
    }

    #[test]
    fn merging_the_same_host_log_twice_is_idempotent() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        // regression: the copying merge double-counted latency samples and
        // deliveries when a host log was merged twice (its pending entries
        // overlapped with the already-resolved set)
        let mut shared = DeliveryLog::new();
        shared.note_injection(EventId(1), 100);
        let mut local = DeliveryLog::new();
        local.record_at(SubId(1), &ComplexEvent::new(vec![ev(1)]), 110);
        local.record_at(SubId(1), &ComplexEvent::new(vec![ev(7)]), 120); // stays pending
        shared.merge(&mut local);
        assert_eq!(shared.complex_deliveries(), 2);
        assert_eq!(shared.latency_samples(), &[10]);
        // the merge drained the local results…
        assert_eq!(local.complex_deliveries(), 0);
        // …so a second merge of the same log changes nothing
        shared.merge(&mut local);
        assert_eq!(shared.complex_deliveries(), 2);
        assert_eq!(shared.latency_samples(), &[10]);
        assert_eq!(shared.delivered(SubId(1)).len(), 2);
        // the straggler resolves exactly once when its injection registers
        shared.note_injection(EventId(7), 115);
        shared.resolve_pending();
        assert_eq!(shared.latency_samples(), &[10, 5]);
        shared.resolve_pending();
        assert_eq!(shared.latency_samples(), &[10, 5], "resolution idempotent");
    }

    #[test]
    fn severed_link_drops_are_conserved_and_heal_restores_delivery() {
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.sever_link(NodeId(1), NodeId(2)).unwrap();
        sim.inject_and_run(NodeId(0), 1);
        // the flood serves its own side and dies at the cut
        assert_eq!(sim.node(NodeId(1)).seen, vec![1]);
        assert!(sim.node(NodeId(2)).seen.is_empty());
        assert_eq!(sim.dropped_severed(), 1);
        assert_eq!(sim.dropped_from_queue(), 1);
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
        // the far side keeps serving reachable traffic
        sim.inject_and_run(NodeId(3), 2);
        assert_eq!(sim.node(NodeId(2)).seen, vec![2]);
        assert_eq!(sim.node(NodeId(0)).seen, vec![1]);
        // heal: new traffic crosses again (the dropped floods stay dropped —
        // re-offering state is the on_link_up protocol, not the carrier's job)
        sim.heal_link(NodeId(1), NodeId(2)).unwrap();
        sim.inject_and_run(NodeId(0), 3);
        assert_eq!(sim.node(NodeId(3)).seen, vec![2, 3]);
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    #[test]
    fn in_flight_messages_at_sever_time_still_arrive() {
        // queued-or-dropped semantics: a message on the wire when the link
        // is cut was already transmitted and arrives; sends after the cut die
        let topo = builders::line(3);
        let mut sim = Simulator::with_latency(topo, LatencyModel::Uniform { hop: 4 }, |_, _| {
            Flood::default()
        });
        sim.inject(NodeId(0), 1);
        sim.run_until(5); // the 1→2 copy is in flight, due at t=8
        sim.sever_link(NodeId(1), NodeId(2)).unwrap();
        sim.run_to_quiescence();
        assert_eq!(sim.node(NodeId(2)).seen, vec![1], "pre-cut copy arrives");
        assert_eq!(sim.dropped_severed(), 0);
    }

    /// Behaviour that records link-up reconciliation calls.
    #[derive(Debug, Default)]
    struct LinkUp {
        ups: Vec<NodeId>,
    }
    impl NodeBehavior for LinkUp {
        type Msg = u64;
        fn on_message(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
        fn on_link_up(&mut self, peer: NodeId, ctx: &mut Ctx<'_, u64>) {
            self.ups.push(peer);
            ctx.send(peer, 99, ChargeKind::Recovery, 1);
        }
    }

    #[test]
    fn heal_runs_on_link_up_on_both_endpoints() {
        let topo = builders::line(3);
        let mut sim = Simulator::new(topo, |_, _| LinkUp::default());
        sim.sever_link(NodeId(0), NodeId(1)).unwrap();
        sim.heal_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sim.node(NodeId(0)).ups, vec![NodeId(1)]);
        assert_eq!(sim.node(NodeId(1)).ups, vec![NodeId(0)]);
        assert!(sim.node(NodeId(2)).ups.is_empty());
        assert!(sim.stats.recovery_msgs() >= 2, "reconciliation is charged");
        // healing a healthy link does not re-run reconciliation
        sim.heal_link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sim.node(NodeId(0)).ups.len(), 1);
        sim.run_to_quiescence();
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }

    #[test]
    fn heartbeats_confirm_a_crashed_node_and_clear_false_suspicion() {
        // line 0-1-2: enable liveness, crash n2, drive time past the
        // timeout — n1 (its only live neighbor) must confirm it dead
        let topo = builders::line(3);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.set_liveness(10, 25);
        sim.crash_and_regraft(NodeId(2), NodeId(1)).unwrap();
        sim.run_until(100);
        assert!(sim.suspicions().contains(&(NodeId(1), NodeId(2))));
        assert_eq!(sim.take_confirmed_dead(), vec![NodeId(2)]);
        assert!(sim.take_confirmed_dead().is_empty(), "drained once");
        // healthy pairs never suspected each other
        assert!(!sim.suspicions().contains(&(NodeId(0), NodeId(1))));
        // conservation holds with heartbeat traffic in the ledger
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
        assert!(sim.stats.liveness_msgs() > 0, "heartbeats are charged");
    }

    #[test]
    fn false_suspicion_across_a_severed_link_clears_after_heal() {
        // partition a live leaf: its neighbor falsely confirms it dead;
        // after heal the next pong re-admits it with no state change
        let topo = builders::line(3);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.set_liveness(10, 25);
        sim.sever_link(NodeId(1), NodeId(2)).unwrap();
        sim.run_until(100);
        assert!(sim.suspicions().contains(&(NodeId(1), NodeId(2))));
        assert!(sim.suspicions().contains(&(NodeId(2), NodeId(1))));
        assert_eq!(
            sim.take_confirmed_dead(),
            vec![NodeId(2)],
            "a severed leaf is indistinguishable from a corpse — the engine \
             layer must intersect with real crash records"
        );
        sim.heal_link(NodeId(1), NodeId(2)).unwrap();
        sim.run_until(200);
        assert!(sim.suspicions().is_empty(), "pongs cleared both directions");
        assert!(sim.take_confirmed_dead().is_empty());
        // node state never changed: suspicion is observation, not mutation
        assert!(sim.node(NodeId(2)).seen.is_empty());
        assert_eq!(
            sim.scheduled_total(),
            sim.steps() + sim.dropped_from_queue() + sim.queue_depth() as u64
        );
    }
}
