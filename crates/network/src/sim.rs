//! Deterministic run-to-quiescence message simulator.
//!
//! The paper's metrics are traffic counts, not latencies, so the simulator
//! processes messages from a FIFO queue until none remain ("quiescence")
//! after each injection. Every behaviour implemented against
//! [`NodeBehavior`] also runs unmodified on real OS threads via
//! `fsf-runtime`, which provides the concurrency the paper's Xen testbed
//! had; the simulator provides the determinism the evaluation needs.

use crate::topology::{NodeId, Topology};
use crate::traffic::{ChargeKind, TrafficStats};
use fsf_model::{ComplexEvent, EventId, SubId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The node-logic trait implemented by every engine (FSF and the four
/// baselines).
pub trait NodeBehavior {
    /// The engine's wire message type.
    type Msg: Clone + std::fmt::Debug;

    /// Handle one message. `from == ctx.node()` signals a locally injected
    /// item (the paper's `n == m` case: a local user subscription, a local
    /// sensor reading, or a local sensor appearing).
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// The topology changed around this node (a crashed neighbor's subtree
    /// was re-grafted). Nodes with precomputed routing state (e.g. the
    /// centralized baseline's next-hop table) refresh it here; the default
    /// is a no-op because the pub/sub family reads `ctx.neighbors()` fresh
    /// on every message.
    fn on_topology_change(&mut self, _topology: &Topology) {}
}

/// What a node may do while handling a message: send to neighbors and
/// deliver results to its local users.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
    deliveries: &'a mut DeliveryLog,
}

impl<'a, M> Ctx<'a, M> {
    /// Construct a context for an external executor (e.g. the threaded
    /// runtime in `fsf-runtime`) that drives [`NodeBehavior`] outside the
    /// simulator. The executor owns the outbox and delivery log and is
    /// responsible for dispatching/charging the drained sends.
    #[must_use]
    pub fn external(
        node: NodeId,
        neighbors: &'a [NodeId],
        outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
        deliveries: &'a mut DeliveryLog,
    ) -> Self {
        Ctx {
            node,
            neighbors,
            outbox,
            deliveries,
        }
    }

    /// The node executing.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's neighbors (sorted).
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Send `msg` to neighbor `to`, charging `units` of `kind` traffic on
    /// the link. Panics if `to` is not a neighbor — the system model only
    /// has local interaction.
    pub fn send(&mut self, to: NodeId, msg: M, kind: ChargeKind, units: u64) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "{} is not a neighbor of {}",
            to,
            self.node
        );
        self.outbox.push((to, msg, kind, units));
    }

    /// Deliver a complex event to a local user's subscription.
    pub fn deliver(&mut self, sub: SubId, event: &ComplexEvent) {
        self.deliveries.record(sub, event);
    }
}

/// Results delivered to end users, as needed for the recall metric
/// (§VI-F): per subscription, the set of simple events that reached the
/// user inside at least one delivered complex event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryLog {
    per_sub: BTreeMap<SubId, BTreeSet<EventId>>,
    complex_deliveries: u64,
}

impl DeliveryLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivered complex event.
    pub fn record(&mut self, sub: SubId, event: &ComplexEvent) {
        self.complex_deliveries += 1;
        self.per_sub
            .entry(sub)
            .or_default()
            .extend(event.event_ids());
    }

    /// Simple events delivered for `sub` (empty set if none).
    #[must_use]
    pub fn delivered(&self, sub: SubId) -> &BTreeSet<EventId> {
        static EMPTY: BTreeSet<EventId> = BTreeSet::new();
        self.per_sub.get(&sub).unwrap_or(&EMPTY)
    }

    /// Number of `deliver` calls (complex events, duplicates included).
    #[must_use]
    pub fn complex_deliveries(&self) -> u64 {
        self.complex_deliveries
    }

    /// Subscriptions with at least one delivery.
    pub fn subs(&self) -> impl Iterator<Item = SubId> + '_ {
        self.per_sub.keys().copied()
    }

    /// Total distinct (subscription, simple event) delivery pairs.
    #[must_use]
    pub fn total_event_units(&self) -> u64 {
        self.per_sub.values().map(|s| s.len() as u64).sum()
    }

    /// Fold another log into this one (used by multi-executor runtimes).
    pub fn merge(&mut self, other: &DeliveryLog) {
        self.complex_deliveries += other.complex_deliveries;
        for (sub, events) in &other.per_sub {
            self.per_sub
                .entry(*sub)
                .or_default()
                .extend(events.iter().copied());
        }
    }
}

#[derive(Debug, Clone)]
struct Envelope<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// Deterministic FIFO simulator over a tree of [`NodeBehavior`] nodes.
#[derive(Debug)]
pub struct Simulator<B: NodeBehavior> {
    topology: Topology,
    nodes: Vec<B>,
    queue: VecDeque<Envelope<B::Msg>>,
    /// Accumulated traffic counters.
    pub stats: TrafficStats,
    /// Accumulated end-user deliveries.
    pub deliveries: DeliveryLog,
    steps: u64,
    max_steps_per_run: u64,
    down: BTreeSet<NodeId>,
    dropped_to_downed: u64,
}

impl<B: NodeBehavior> Simulator<B> {
    /// Default per-`run_to_quiescence` step budget; exceeding it panics
    /// (a forwarding loop would otherwise spin forever).
    pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

    /// Build a simulator, constructing one node per topology id.
    pub fn new(topology: Topology, mut make_node: impl FnMut(NodeId, &Topology) -> B) -> Self {
        let nodes = topology
            .nodes()
            .map(|id| make_node(id, &topology))
            .collect();
        Simulator {
            topology,
            nodes,
            queue: VecDeque::new(),
            stats: TrafficStats::new(),
            deliveries: DeliveryLog::new(),
            steps: 0,
            max_steps_per_run: Self::DEFAULT_MAX_STEPS,
            down: BTreeSet::new(),
            dropped_to_downed: 0,
        }
    }

    /// Override the runaway-protection step budget.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps_per_run = max;
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state (for inspection in tests).
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids — churn plans make
    /// out-of-range ids a realistic mistake.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &B {
        let n = self.topology.len();
        self.nodes
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})"))
    }

    /// Mutable access to a node's state.
    ///
    /// # Panics
    /// Panics with a named-id message on unknown node ids (see [`Self::node`]).
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        let n = self.topology.len();
        self.nodes
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown NodeId {id}: topology has {n} nodes (0..{n})"))
    }

    /// Is the node marked down (crashed)?
    #[must_use]
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down.contains(&id)
    }

    /// Messages dropped because their destination was down — the simulator's
    /// fault-injection counter.
    #[must_use]
    pub fn dropped_to_downed(&self) -> u64 {
        self.dropped_to_downed
    }

    /// Crash a node: re-graft its orphaned neighbors onto `anchor` (see
    /// [`Topology::regraft`]), mark it down, drop every queued message
    /// addressed to it, and notify every surviving node of the new topology
    /// via [`NodeBehavior::on_topology_change`]. Messages later sent to the
    /// downed node are charged (they left the sender's radio) but dropped.
    pub fn crash_and_regraft(
        &mut self,
        crashed: NodeId,
        anchor: NodeId,
    ) -> Result<(), crate::topology::TopologyError> {
        if self.down.contains(&anchor) {
            // re-grafting survivors onto a corpse would black-hole them
            return Err(crate::topology::TopologyError::BadEdge(crashed.0, anchor.0));
        }
        self.topology = self.topology.regraft(crashed, anchor)?;
        self.down.insert(crashed);
        let before = self.queue.len();
        self.queue.retain(|env| env.to != crashed);
        self.dropped_to_downed += (before - self.queue.len()) as u64;
        for id in 0..self.nodes.len() {
            if !self.down.contains(&NodeId(id as u32)) {
                self.nodes[id].on_topology_change(&self.topology);
            }
        }
        Ok(())
    }

    /// Messages processed since construction.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Inject a local item (sensor appearance, user subscription, sensor
    /// reading) at `node`. The node sees `from == node`. Injections at a
    /// downed node are dropped (and counted) — its users and sensors died
    /// with it.
    pub fn inject(&mut self, node: NodeId, msg: B::Msg) {
        if self.down.contains(&node) {
            self.dropped_to_downed += 1;
            return;
        }
        self.queue.push_back(Envelope {
            from: node,
            to: node,
            msg,
        });
    }

    /// Process queued messages until the network is quiescent. Returns the
    /// number of messages processed by this call.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut processed = 0u64;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        while let Some(env) = self.queue.pop_front() {
            processed += 1;
            if processed > self.max_steps_per_run {
                panic!(
                    "simulator exceeded {} steps — forwarding loop?",
                    self.max_steps_per_run
                );
            }
            if self.down.contains(&env.to) {
                self.dropped_to_downed += 1;
                continue;
            }
            let node_idx = env.to.0 as usize;
            {
                let mut ctx = Ctx {
                    node: env.to,
                    neighbors: self.topology.neighbors(env.to),
                    outbox: &mut outbox,
                    deliveries: &mut self.deliveries,
                };
                self.nodes[node_idx].on_message(env.from, env.msg, &mut ctx);
            }
            for (to, msg, kind, units) in outbox.drain(..) {
                self.stats.charge(kind, env.to, to, units);
                self.queue.push_back(Envelope {
                    from: env.to,
                    to,
                    msg,
                });
            }
        }
        self.steps += processed;
        processed
    }

    /// Convenience: inject then run to quiescence.
    pub fn inject_and_run(&mut self, node: NodeId, msg: B::Msg) -> u64 {
        self.inject(node, msg);
        self.run_to_quiescence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    /// A flooding test behaviour: every locally injected number floods the
    /// tree; nodes remember what they saw.
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            let me = ctx.node();
            let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
            for n in neighbors {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    #[test]
    fn flood_reaches_every_node_once() {
        let topo = builders::balanced(15, 2);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.inject_and_run(NodeId(7), 42);
        for n in 0..15u32 {
            assert_eq!(sim.node(NodeId(n)).seen, vec![42], "node n{n}");
        }
        // a tree floods over exactly n-1 links (back-edges suppressed)
        assert_eq!(sim.stats.adv_msgs, 14);
    }

    #[test]
    fn quiescence_returns_processed_count() {
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        let processed = sim.inject_and_run(NodeId(0), 1);
        // 1 local + 3 forwards
        assert_eq!(processed, 4);
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.run_to_quiescence(), 0, "already quiescent");
    }

    #[test]
    #[should_panic(expected = "not a neighbor")]
    fn sending_to_non_neighbor_panics() {
        #[derive(Debug)]
        struct Bad;
        impl NodeBehavior for Bad {
            type Msg = ();
            fn on_message(&mut self, _: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.send(NodeId(3), (), ChargeKind::Event, 1);
            }
        }
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Bad);
        sim.inject_and_run(NodeId(0), ());
    }

    #[test]
    #[should_panic(expected = "forwarding loop")]
    fn runaway_protection_trips() {
        #[derive(Debug)]
        struct PingPong;
        impl NodeBehavior for PingPong {
            type Msg = ();
            fn on_message(&mut self, from: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                // bounce forever between the two nodes
                let to = if from == ctx.node() {
                    ctx.neighbors()[0]
                } else {
                    from
                };
                ctx.send(to, (), ChargeKind::Event, 1);
            }
        }
        let topo = builders::line(2);
        let mut sim = Simulator::new(topo, |_, _| PingPong);
        sim.set_max_steps(1000);
        sim.inject_and_run(NodeId(0), ());
    }

    #[test]
    fn unknown_node_id_panics_with_named_message() {
        let topo = builders::line(3);
        let sim = Simulator::new(topo, |_, _| Flood::default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.node(NodeId(7));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("unknown NodeId n7"), "got: {msg}");
        assert!(msg.contains("3 nodes"), "got: {msg}");
    }

    #[test]
    fn crashed_node_drops_traffic_but_survivors_reroute() {
        // star: hub 0, leaves 1..4 — crash the hub onto leaf 1
        let topo = builders::star(5);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.crash_and_regraft(NodeId(0), NodeId(1)).unwrap();
        assert!(sim.is_down(NodeId(0)));
        sim.inject_and_run(NodeId(2), 42);
        // the flood reaches every survivor via the new hub (leaf 1)…
        for n in [1u32, 2, 3, 4] {
            assert_eq!(sim.node(NodeId(n)).seen, vec![42], "node n{n}");
        }
        // …and the copy sent to the downed node is charged but dropped
        assert!(sim.node(NodeId(0)).seen.is_empty());
        assert!(sim.dropped_to_downed() >= 1);
        // injections at the corpse are swallowed
        let dropped = sim.dropped_to_downed();
        sim.inject_and_run(NodeId(0), 43);
        assert_eq!(sim.dropped_to_downed(), dropped + 1);
    }

    #[test]
    fn regrafting_onto_a_downed_anchor_is_rejected() {
        // line 0-1-2-3: down node 1, then try to re-graft node 2's
        // survivors onto the corpse
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.crash_and_regraft(NodeId(1), NodeId(2)).unwrap();
        assert!(sim.crash_and_regraft(NodeId(2), NodeId(1)).is_err());
        // a live anchor still works
        sim.crash_and_regraft(NodeId(2), NodeId(3)).unwrap();
        sim.inject_and_run(NodeId(0), 7);
        assert_eq!(sim.node(NodeId(3)).seen, vec![7], "0 reaches 3 via regraft");
    }

    #[test]
    fn delivery_log_tracks_distinct_simple_events() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        let mut log = DeliveryLog::new();
        log.record(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]));
        log.record(SubId(1), &ComplexEvent::new(vec![ev(2), ev(3)]));
        log.record(SubId(2), &ComplexEvent::new(vec![ev(1)]));
        assert_eq!(log.complex_deliveries(), 3);
        assert_eq!(log.delivered(SubId(1)).len(), 3);
        assert_eq!(log.delivered(SubId(2)).len(), 1);
        assert_eq!(log.delivered(SubId(9)).len(), 0);
        assert_eq!(log.total_event_units(), 4);
        assert_eq!(log.subs().count(), 2);
    }
}
