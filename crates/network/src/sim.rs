//! Deterministic run-to-quiescence message simulator.
//!
//! The paper's metrics are traffic counts, not latencies, so the simulator
//! processes messages from a FIFO queue until none remain ("quiescence")
//! after each injection. Every behaviour implemented against
//! [`NodeBehavior`] also runs unmodified on real OS threads via
//! `fsf-runtime`, which provides the concurrency the paper's Xen testbed
//! had; the simulator provides the determinism the evaluation needs.

use crate::topology::{NodeId, Topology};
use crate::traffic::{ChargeKind, TrafficStats};
use fsf_model::{ComplexEvent, EventId, SubId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The node-logic trait implemented by every engine (FSF and the four
/// baselines).
pub trait NodeBehavior {
    /// The engine's wire message type.
    type Msg: Clone + std::fmt::Debug;

    /// Handle one message. `from == ctx.node()` signals a locally injected
    /// item (the paper's `n == m` case: a local user subscription, a local
    /// sensor reading, or a local sensor appearing).
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);
}

/// What a node may do while handling a message: send to neighbors and
/// deliver results to its local users.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
    deliveries: &'a mut DeliveryLog,
}

impl<'a, M> Ctx<'a, M> {
    /// Construct a context for an external executor (e.g. the threaded
    /// runtime in `fsf-runtime`) that drives [`NodeBehavior`] outside the
    /// simulator. The executor owns the outbox and delivery log and is
    /// responsible for dispatching/charging the drained sends.
    #[must_use]
    pub fn external(
        node: NodeId,
        neighbors: &'a [NodeId],
        outbox: &'a mut Vec<(NodeId, M, ChargeKind, u64)>,
        deliveries: &'a mut DeliveryLog,
    ) -> Self {
        Ctx {
            node,
            neighbors,
            outbox,
            deliveries,
        }
    }

    /// The node executing.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's neighbors (sorted).
    #[must_use]
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Send `msg` to neighbor `to`, charging `units` of `kind` traffic on
    /// the link. Panics if `to` is not a neighbor — the system model only
    /// has local interaction.
    pub fn send(&mut self, to: NodeId, msg: M, kind: ChargeKind, units: u64) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "{} is not a neighbor of {}",
            to,
            self.node
        );
        self.outbox.push((to, msg, kind, units));
    }

    /// Deliver a complex event to a local user's subscription.
    pub fn deliver(&mut self, sub: SubId, event: &ComplexEvent) {
        self.deliveries.record(sub, event);
    }
}

/// Results delivered to end users, as needed for the recall metric
/// (§VI-F): per subscription, the set of simple events that reached the
/// user inside at least one delivered complex event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryLog {
    per_sub: BTreeMap<SubId, BTreeSet<EventId>>,
    complex_deliveries: u64,
}

impl DeliveryLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delivered complex event.
    pub fn record(&mut self, sub: SubId, event: &ComplexEvent) {
        self.complex_deliveries += 1;
        self.per_sub
            .entry(sub)
            .or_default()
            .extend(event.event_ids());
    }

    /// Simple events delivered for `sub` (empty set if none).
    #[must_use]
    pub fn delivered(&self, sub: SubId) -> &BTreeSet<EventId> {
        static EMPTY: BTreeSet<EventId> = BTreeSet::new();
        self.per_sub.get(&sub).unwrap_or(&EMPTY)
    }

    /// Number of `deliver` calls (complex events, duplicates included).
    #[must_use]
    pub fn complex_deliveries(&self) -> u64 {
        self.complex_deliveries
    }

    /// Subscriptions with at least one delivery.
    pub fn subs(&self) -> impl Iterator<Item = SubId> + '_ {
        self.per_sub.keys().copied()
    }

    /// Total distinct (subscription, simple event) delivery pairs.
    #[must_use]
    pub fn total_event_units(&self) -> u64 {
        self.per_sub.values().map(|s| s.len() as u64).sum()
    }

    /// Fold another log into this one (used by multi-executor runtimes).
    pub fn merge(&mut self, other: &DeliveryLog) {
        self.complex_deliveries += other.complex_deliveries;
        for (sub, events) in &other.per_sub {
            self.per_sub
                .entry(*sub)
                .or_default()
                .extend(events.iter().copied());
        }
    }
}

#[derive(Debug, Clone)]
struct Envelope<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// Deterministic FIFO simulator over a tree of [`NodeBehavior`] nodes.
#[derive(Debug)]
pub struct Simulator<B: NodeBehavior> {
    topology: Topology,
    nodes: Vec<B>,
    queue: VecDeque<Envelope<B::Msg>>,
    /// Accumulated traffic counters.
    pub stats: TrafficStats,
    /// Accumulated end-user deliveries.
    pub deliveries: DeliveryLog,
    steps: u64,
    max_steps_per_run: u64,
}

impl<B: NodeBehavior> Simulator<B> {
    /// Default per-`run_to_quiescence` step budget; exceeding it panics
    /// (a forwarding loop would otherwise spin forever).
    pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

    /// Build a simulator, constructing one node per topology id.
    pub fn new(topology: Topology, mut make_node: impl FnMut(NodeId, &Topology) -> B) -> Self {
        let nodes = topology
            .nodes()
            .map(|id| make_node(id, &topology))
            .collect();
        Simulator {
            topology,
            nodes,
            queue: VecDeque::new(),
            stats: TrafficStats::new(),
            deliveries: DeliveryLog::new(),
            steps: 0,
            max_steps_per_run: Self::DEFAULT_MAX_STEPS,
        }
    }

    /// Override the runaway-protection step budget.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps_per_run = max;
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node's state (for inspection in tests).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node's state.
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        &mut self.nodes[id.0 as usize]
    }

    /// Messages processed since construction.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Inject a local item (sensor appearance, user subscription, sensor
    /// reading) at `node`. The node sees `from == node`.
    pub fn inject(&mut self, node: NodeId, msg: B::Msg) {
        self.queue.push_back(Envelope {
            from: node,
            to: node,
            msg,
        });
    }

    /// Process queued messages until the network is quiescent. Returns the
    /// number of messages processed by this call.
    pub fn run_to_quiescence(&mut self) -> u64 {
        let mut processed = 0u64;
        let mut outbox: Vec<(NodeId, B::Msg, ChargeKind, u64)> = Vec::new();
        while let Some(env) = self.queue.pop_front() {
            processed += 1;
            if processed > self.max_steps_per_run {
                panic!(
                    "simulator exceeded {} steps — forwarding loop?",
                    self.max_steps_per_run
                );
            }
            let node_idx = env.to.0 as usize;
            {
                let mut ctx = Ctx {
                    node: env.to,
                    neighbors: self.topology.neighbors(env.to),
                    outbox: &mut outbox,
                    deliveries: &mut self.deliveries,
                };
                self.nodes[node_idx].on_message(env.from, env.msg, &mut ctx);
            }
            for (to, msg, kind, units) in outbox.drain(..) {
                self.stats.charge(kind, env.to, to, units);
                self.queue.push_back(Envelope {
                    from: env.to,
                    to,
                    msg,
                });
            }
        }
        self.steps += processed;
        processed
    }

    /// Convenience: inject then run to quiescence.
    pub fn inject_and_run(&mut self, node: NodeId, msg: B::Msg) -> u64 {
        self.inject(node, msg);
        self.run_to_quiescence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    /// A flooding test behaviour: every locally injected number floods the
    /// tree; nodes remember what they saw.
    #[derive(Debug, Default)]
    struct Flood {
        seen: Vec<u64>,
    }

    impl NodeBehavior for Flood {
        type Msg = u64;
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            if self.seen.contains(&msg) {
                return;
            }
            self.seen.push(msg);
            let me = ctx.node();
            let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
            for n in neighbors {
                if n != from || from == me {
                    ctx.send(n, msg, ChargeKind::Advertisement, 1);
                }
            }
        }
    }

    #[test]
    fn flood_reaches_every_node_once() {
        let topo = builders::balanced(15, 2);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        sim.inject_and_run(NodeId(7), 42);
        for n in 0..15u32 {
            assert_eq!(sim.node(NodeId(n)).seen, vec![42], "node n{n}");
        }
        // a tree floods over exactly n-1 links (back-edges suppressed)
        assert_eq!(sim.stats.adv_msgs, 14);
    }

    #[test]
    fn quiescence_returns_processed_count() {
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Flood::default());
        let processed = sim.inject_and_run(NodeId(0), 1);
        // 1 local + 3 forwards
        assert_eq!(processed, 4);
        assert_eq!(sim.steps(), 4);
        assert_eq!(sim.run_to_quiescence(), 0, "already quiescent");
    }

    #[test]
    #[should_panic(expected = "not a neighbor")]
    fn sending_to_non_neighbor_panics() {
        #[derive(Debug)]
        struct Bad;
        impl NodeBehavior for Bad {
            type Msg = ();
            fn on_message(&mut self, _: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                ctx.send(NodeId(3), (), ChargeKind::Event, 1);
            }
        }
        let topo = builders::line(4);
        let mut sim = Simulator::new(topo, |_, _| Bad);
        sim.inject_and_run(NodeId(0), ());
    }

    #[test]
    #[should_panic(expected = "forwarding loop")]
    fn runaway_protection_trips() {
        #[derive(Debug)]
        struct PingPong;
        impl NodeBehavior for PingPong {
            type Msg = ();
            fn on_message(&mut self, from: NodeId, _: (), ctx: &mut Ctx<'_, ()>) {
                // bounce forever between the two nodes
                let to = if from == ctx.node() {
                    ctx.neighbors()[0]
                } else {
                    from
                };
                ctx.send(to, (), ChargeKind::Event, 1);
            }
        }
        let topo = builders::line(2);
        let mut sim = Simulator::new(topo, |_, _| PingPong);
        sim.set_max_steps(1000);
        sim.inject_and_run(NodeId(0), ());
    }

    #[test]
    fn delivery_log_tracks_distinct_simple_events() {
        use fsf_model::{AttrId, Event, Point, SensorId, Timestamp};
        let ev = |id: u64| Event {
            id: EventId(id),
            sensor: SensorId(1),
            attr: AttrId(0),
            location: Point::new(0.0, 0.0),
            value: 0.0,
            timestamp: Timestamp(id),
        };
        let mut log = DeliveryLog::new();
        log.record(SubId(1), &ComplexEvent::new(vec![ev(1), ev(2)]));
        log.record(SubId(1), &ComplexEvent::new(vec![ev(2), ev(3)]));
        log.record(SubId(2), &ComplexEvent::new(vec![ev(1)]));
        assert_eq!(log.complex_deliveries(), 3);
        assert_eq!(log.delivered(SubId(1)).len(), 3);
        assert_eq!(log.delivered(SubId(2)).len(), 1);
        assert_eq!(log.delivered(SubId(9)).len(), 0);
        assert_eq!(log.total_event_units(), 4);
        assert_eq!(log.subs().count(), 2);
    }
}
