//! Message-latency models and delivery-latency statistics for the
//! discrete-event simulator.
//!
//! Every send is scheduled `delay(from, to)` virtual ticks into the
//! future. All models are deterministic functions of the link, so two runs
//! of the same workload schedule identical timelines, and — because the
//! per-link delay is constant — messages sent over one link are delivered
//! in send order (per-link FIFO), which the retraction protocols rely on
//! (a retraction chases its own flood and must never overtake it).

use crate::topology::NodeId;
use std::collections::BTreeMap;

/// How long a message takes to cross a link, in virtual ticks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// Every hop is instantaneous. This is the compatibility mode: with it,
    /// the discrete-event scheduler reproduces the pre-scheduler FIFO
    /// simulator step for step (all messages carry the same `deliver_at`,
    /// so the sequence-number tie-break *is* FIFO order).
    #[default]
    Zero,
    /// Every hop takes the same number of ticks.
    Uniform {
        /// Per-hop delay in ticks (> 0 for genuine interleaving).
        hop: u64,
    },
    /// Per-link weighted delays: an explicit per-link table with a default
    /// for unlisted links. Links are undirected — `(a, b)` and `(b, a)`
    /// share a weight.
    PerLink {
        /// Delay for links not present in `weights`.
        default: u64,
        /// Per-link delay overrides, keyed by the normalized (low, high)
        /// endpoint pair.
        weights: BTreeMap<(NodeId, NodeId), u64>,
    },
}

impl LatencyModel {
    /// A per-link model from `(a, b, delay)` triples (endpoint order is
    /// irrelevant) with `default` for every other link.
    #[must_use]
    pub fn per_link(default: u64, links: impl IntoIterator<Item = (NodeId, NodeId, u64)>) -> Self {
        LatencyModel::PerLink {
            default,
            weights: links
                .into_iter()
                .map(|(a, b, d)| (Self::normalize(a, b), d))
                .collect(),
        }
    }

    fn normalize(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Ticks a message sent `from → to` spends in flight.
    #[must_use]
    pub fn delay(&self, from: NodeId, to: NodeId) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { hop } => *hop,
            LatencyModel::PerLink { default, weights } => {
                *weights.get(&Self::normalize(from, to)).unwrap_or(default)
            }
        }
    }

    /// The smallest delay any single hop can take (the lookahead floor of
    /// the sharded simulator: conservative windows only exist when every
    /// link costs at least one tick, so `min_hop() == 0` forces coalesced
    /// single-queue execution).
    #[must_use]
    pub fn min_hop(&self) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { hop } => *hop,
            LatencyModel::PerLink { default, weights } => weights
                .values()
                .copied()
                .chain(std::iter::once(*default))
                .min()
                .unwrap_or(*default),
        }
    }

    /// The largest delay any single hop can take (an upper bound used to
    /// compute flood-drain safety gaps).
    #[must_use]
    pub fn max_hop(&self) -> u64 {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Uniform { hop } => *hop,
            LatencyModel::PerLink { default, weights } => weights
                .values()
                .copied()
                .chain(std::iter::once(*default))
                .max()
                .unwrap_or(*default),
        }
    }
}

/// Summary statistics of end-to-end delivery latency (virtual ticks from
/// reading injection to complex-event delivery at the user's node).
///
/// `mean` is an `f64`, so the summary is `PartialEq` but not `Eq`; the
/// equivalence batteries compare delivered *results*, not timing, and are
/// unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of complex-event deliveries with a known injection time.
    pub samples: u64,
    /// Median delivery latency.
    pub p50: u64,
    /// 95th-percentile delivery latency.
    pub p95: u64,
    /// 99th-percentile delivery latency — the tail the compare gate
    /// watches for regressions.
    pub p99: u64,
    /// Worst observed delivery latency.
    pub max: u64,
    /// Arithmetic-mean delivery latency.
    pub mean: f64,
}

impl LatencySummary {
    /// Nearest-rank percentiles and mean over raw samples, from a single
    /// sort and a single accumulation pass (empty input → all zero).
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            samples: sorted.len() as u64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: *sorted.last().expect("non-empty"),
            mean: sum as f64 / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_symmetric() {
        let m = LatencyModel::per_link(2, [(NodeId(3), NodeId(1), 7)]);
        assert_eq!(m.delay(NodeId(1), NodeId(3)), 7);
        assert_eq!(m.delay(NodeId(3), NodeId(1)), 7);
        assert_eq!(m.delay(NodeId(0), NodeId(1)), 2);
        assert_eq!(m.max_hop(), 7);
        assert_eq!(m.min_hop(), 2);
        assert_eq!(LatencyModel::Zero.delay(NodeId(0), NodeId(1)), 0);
        assert_eq!(LatencyModel::Zero.min_hop(), 0);
        assert_eq!(LatencyModel::Uniform { hop: 4 }.max_hop(), 4);
        assert_eq!(LatencyModel::Uniform { hop: 4 }.min_hop(), 4);
        let slow_default = LatencyModel::per_link(9, [(NodeId(0), NodeId(1), 3)]);
        assert_eq!(slow_default.min_hop(), 3);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = LatencySummary::from_samples(&[5, 1, 9, 3, 7]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.p50, 5);
        assert_eq!(s.p95, 9);
        assert_eq!(s.p99, 9);
        assert_eq!(s.max, 9);
        assert_eq!(s.mean, 5.0);
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let one = LatencySummary::from_samples(&[4]);
        assert_eq!((one.p50, one.p95, one.p99, one.max), (4, 4, 4, 4));
        assert_eq!(one.mean, 4.0);
    }

    #[test]
    fn p99_separates_from_p95_on_long_tails() {
        // 100 samples: 98 fast, 2 slow — p95 stays fast, p99 catches the
        // first slow one, max the worst
        let mut samples = vec![1u64; 98];
        samples.push(50);
        samples.push(90);
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p95, 1);
        assert_eq!(s.p99, 50);
        assert_eq!(s.max, 90);
        assert!((s.mean - 2.38).abs() < 1e-9, "mean {}", s.mean);
    }
}
