//! # fsf-dynamics
//!
//! The churn, retraction and fault-injection subsystem: everything the
//! static paper reproduction lacked about *change*. The paper's system
//! model (§IV-B) says subscriptions "are valid until explicitly removed"
//! and targets long-lived sensor deployments — so a faithful system must
//! survive sensors departing, users unsubscribing, and nodes crashing.
//!
//! * [`plan`] — [`ChurnPlan`]: a deterministic sequence of
//!   [`ChurnAction`]s (sensor up/down, subscribe/unsubscribe, publish,
//!   node crash, link sever/heal), either scripted by hand or generated
//!   from a seed over any topology, plus the teardown suffix that
//!   retracts everything that is still alive. Partition plans
//!   ([`ChurnPlan::seeded_partition`]) cut one tree edge, publish through
//!   the split, and heal; their never-partitioned
//!   [`ChurnPlan::connected_twin`] plus the reachability
//!   [`ChurnPlan::partition_oracle`] give an exact delivery oracle;
//! * [`runner`] — replays a plan through any [`fsf_engines::Engine`]
//!   (all five approaches speak the retraction protocol), either
//!   serialized (flush per action) or timed ([`run_plan_timed`]: actions
//!   fire at their [`TimedPlan`] virtual times while earlier floods are
//!   still in flight);
//! * [`invariants`] — leak checks: a fully torn-down network must return
//!   to its post-bootstrap state — no operators, no stored events, no
//!   advertisements, no forwarding routes on any surviving node.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod invariants;
pub mod plan;
pub mod runner;

pub use invariants::{assert_clean, leaks};
pub use plan::{
    ChurnAction, ChurnPlan, ChurnPlanConfig, PartitionOracle, PartitionPlanConfig, TimedAction,
    TimedPlan, TimedReplayConfig,
};
pub use runner::{apply_action, run_plan, run_plan_timed, run_plan_timed_traced, run_plan_traced};
