//! Churn plans: deterministic action sequences over a topology.

use fsf_model::{
    Advertisement, AttrId, Event, EventId, Point, SensorId, SubId, Subscription, Timestamp,
    ValueRange,
};
use fsf_network::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// One dynamic event in the life of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnAction {
    /// A sensor appears at `node` and floods its advertisement.
    SensorUp {
        /// Hosting node.
        node: NodeId,
        /// The advertisement it floods.
        adv: Advertisement,
    },
    /// The sensor at `node` departs; its advertisement is retracted.
    SensorDown {
        /// Hosting node.
        node: NodeId,
        /// The departing sensor.
        sensor: SensorId,
    },
    /// A **known** sensor id re-appears at `node` (sensor mobility): the
    /// new host floods a generation-tagged `Move` re-advertisement and
    /// uncovered operators re-split toward the new path. Works for a live
    /// sensor (handoff from `from`) and for a previously departed id
    /// returning at a new station.
    Move {
        /// The new hosting node.
        node: NodeId,
        /// The node that hosted the sensor before the move (bookkeeping:
        /// the stationary-twin transformation retires the old identity
        /// here).
        from: NodeId,
        /// The advertisement the new host floods (same sensor id; the
        /// location may change with the station).
        adv: Advertisement,
    },
    /// A user at `node` registers a subscription.
    Subscribe {
        /// The user's node.
        node: NodeId,
        /// The subscription.
        sub: Subscription,
    },
    /// The user at `node` cancels a subscription.
    Unsubscribe {
        /// The user's node.
        node: NodeId,
        /// The cancelled subscription.
        sub: SubId,
    },
    /// A sensor at `node` publishes a reading.
    Publish {
        /// Hosting node.
        node: NodeId,
        /// The reading.
        event: Event,
    },
    /// `node` crashes; its orphaned neighbors re-graft onto `anchor`.
    Crash {
        /// The crashing node.
        node: NodeId,
        /// The neighbor adopting the orphaned subtree.
        anchor: NodeId,
    },
    /// Run the crash-recovery protocol for every crash still pending —
    /// the management-plane half of the `Crash`/`Recover` pair. A no-op
    /// for engines left in auto-recovery mode (they recovered at the
    /// crash); the pair makes the outage window explicit for engines
    /// driven with auto-recovery off.
    Recover,
    /// The link between `a` and `b` goes down: messages scheduled across
    /// it die at the sender's radio (charged and counted, never
    /// delivered) until the link heals. Severing a tree edge partitions
    /// the deployment; both halves keep serving the subscriptions they
    /// can still reach.
    Sever {
        /// One endpoint of the cut link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The severed link between `a` and `b` comes back: both endpoints
    /// run the reconciliation handshake (tombstones first, then
    /// generation-tagged re-advertisements, then forced re-splits) so
    /// state that diverged during the partition merges.
    Heal {
        /// One endpoint of the restored link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl ChurnAction {
    /// Is this a churn action proper (state change), as opposed to a
    /// `Publish` (steady-state data traffic between churn events)?
    #[must_use]
    pub fn is_churn(&self) -> bool {
        !matches!(self, ChurnAction::Publish { .. })
    }
}

/// Parameters of the seeded churn-plan generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlanConfig {
    /// Master seed; the same `(topology, config)` pair always yields the
    /// same plan.
    pub seed: u64,
    /// Sensors brought up before any churn begins (the bootstrap phase).
    pub initial_sensors: usize,
    /// Number of churn actions proper (sensor up/down, subscribe,
    /// unsubscribe, crash) to generate.
    pub churn_actions: usize,
    /// Readings published after every churn action (steady-state traffic
    /// that exercises the mutated state).
    pub events_per_action: usize,
    /// Maximum dimensions per generated subscription.
    pub max_arity: usize,
    /// Temporal correlation distance `δt` of generated subscriptions.
    pub delta_t: u64,
    /// Value domain: readings are uniform in `[0, value_span)`.
    pub value_span: f64,
    /// Base half-width of subscription ranges (scaled ×\[0.5, 1.5)).
    pub range_half_width: f64,
    /// Seconds the clock advances per published reading.
    pub reading_interval: u64,
    /// Also generate node crashes. Without [`Self::crash_interior`], only
    /// stateless leaf nodes are crashed (nodes hosting no live sensor or
    /// subscription) — the equivalence-preserving generator that predates
    /// the recovery protocol, kept behind this flag pair.
    pub with_crashes: bool,
    /// Lift the stateless-leaf restriction: crash arbitrary interior nodes
    /// (their hosted sensors and subscriptions die with them) and emit the
    /// `Crash`/`Recover` action pair. The generator tracks the re-grafted
    /// topology so later crash anchors stay valid, and jumps the data clock
    /// by `δt` at every crash so no correlation window straddles an outage
    /// (the epoch argument of the `Subscribe` jump, applied to crashes).
    pub crash_interior: bool,
    /// Nodes the generator never crashes (e.g. the topology median, which
    /// the centralized baseline cannot lose).
    pub protected_nodes: Vec<NodeId>,
    /// Guarantee at least this many crashes in interior mode: the dice may
    /// roll none in a short plan, and crash-battery tests need the fault
    /// they are testing to actually occur. Extra `Crash`/`Recover` pairs
    /// (with their publish tails) are appended until the floor is met.
    pub min_crashes: usize,
    /// Generate sensor moves — the **id-reusing** generator mode. A move
    /// picks a live sensor and re-hosts it on a different node (handoff),
    /// or revives a previously departed id at a new station
    /// (re-advertisement); either way the sensor id is *reused*, the
    /// restriction the pre-mobility generator was designed around. Every
    /// move jumps the data clock by `δt` so no correlation window
    /// straddles the handoff's fresh epoch.
    pub with_moves: bool,
    /// Guarantee at least this many moves when [`Self::with_moves`] is on
    /// (mobility batteries need the handoff they are testing to occur).
    /// Extra moves (with their publish tails) are appended until the
    /// floor is met.
    pub min_moves: usize,
}

impl Default for ChurnPlanConfig {
    fn default() -> Self {
        ChurnPlanConfig {
            seed: 0xC0FF_EE00,
            initial_sensors: 8,
            churn_actions: 50,
            events_per_action: 4,
            max_arity: 3,
            delta_t: 30,
            value_span: 100.0,
            range_half_width: 25.0,
            reading_interval: 7,
            with_crashes: false,
            crash_interior: false,
            protected_nodes: Vec::new(),
            min_crashes: 0,
            with_moves: false,
            min_moves: 0,
        }
    }
}

/// Parameters of the seeded partition-plan generator
/// ([`ChurnPlan::seeded_partition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionPlanConfig {
    /// Master seed; the same `(topology, config)` pair always yields the
    /// same plan.
    pub seed: u64,
    /// Sensors brought up before the split (alternating sides of the cut,
    /// so both halves keep publishing while partitioned). At least 2.
    pub sensors: usize,
    /// Single-filter subscriptions registered before the split (even ids
    /// on their sensor's side of the cut, odd ids across it).
    pub subscriptions: usize,
    /// Readings published in each of the three windows (pre-split, split,
    /// post-heal).
    pub events_per_phase: usize,
    /// Temporal correlation distance `δt` of generated subscriptions.
    pub delta_t: u64,
    /// Value domain: readings are uniform in `[0, value_span)`, and every
    /// subscription's range spans it entirely (full recall by design —
    /// the oracle is pure reachability).
    pub value_span: f64,
    /// Seconds the clock advances per published reading.
    pub reading_interval: u64,
}

impl Default for PartitionPlanConfig {
    fn default() -> Self {
        PartitionPlanConfig {
            seed: 0x5EA5_1DE5,
            sensors: 6,
            subscriptions: 8,
            events_per_phase: 12,
            delta_t: 30,
            value_span: 100.0,
            reading_interval: 7,
        }
    }
}

/// What [`ChurnPlan::partition_oracle`] computed: the subscription and
/// event classification the reachable-twin battery compares against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOracle {
    /// Subscriptions that stayed reachable from every sensor they
    /// reference through every severed window: the partitioned run must
    /// deliver *exactly* what the never-partitioned twin delivers to
    /// these.
    pub connected_subs: Vec<SubId>,
    /// Subscriptions cut off from at least one referenced sensor while a
    /// link was down: they lose (only) split-window readings from across
    /// the cut.
    pub severed_subs: Vec<SubId>,
    /// Events published while at least one link was severed — the only
    /// deliveries a severed subscription may be missing.
    pub split_events: Vec<EventId>,
}

/// A deterministic sequence of churn actions over one topology.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnPlan {
    /// The actions, in execution order.
    pub actions: Vec<ChurnAction>,
}

impl ChurnPlan {
    /// How many flood-drain gaps a crash or recovery gets in a timed
    /// schedule: the recovery cascade spans up to three tree traversals
    /// (advertisement re-flood, operator re-forward, event re-send), plus
    /// slack.
    pub const RECOVERY_GAP_FACTOR: u64 = 4;

    /// A hand-scripted plan.
    #[must_use]
    pub fn scripted(actions: Vec<ChurnAction>) -> Self {
        ChurnPlan { actions }
    }

    /// Number of churn actions proper (excluding `Publish`).
    #[must_use]
    pub fn churn_action_count(&self) -> usize {
        self.actions.iter().filter(|a| a.is_churn()).count()
    }

    /// Generate a seeded-random plan over `topology`.
    ///
    /// Invariants the generator maintains so that the deterministic engines
    /// stay delivery-equivalent under the plan:
    /// * readings only come from sensors that are currently up;
    /// * subscriptions only reference sensors that are up at registration
    ///   time (so no engine drops them as unanswerable) and use fresh ids;
    /// * the clock jumps by `δt` at every registration, so "continuous
    ///   queries deliver future events" is unambiguous: without the jump
    ///   the centralized baseline would retroactively serve in-window
    ///   pre-registration events out of its central store — events the
    ///   distributed engines never routed (the static workload's
    ///   batch-epoch separation, applied per subscription);
    /// * sensor ids **are reused** when [`ChurnPlanConfig::with_moves`] is
    ///   on: a known id re-appears at a new node as a [`ChurnAction::Move`]
    ///   (live handoff or departed-id revival), and the engines' `Move`
    ///   re-advertisement protocol re-splits uncovered operators toward
    ///   the new path. Fresh `SensorUp` ids stay unique — reuse always
    ///   goes through the generation-tagged move protocol, and each move
    ///   jumps the data clock by `δt` (handoffs open a fresh correlation
    ///   epoch);
    /// * crashes (if enabled) hit stateless leaves, or — with
    ///   [`ChurnPlanConfig::crash_interior`] — arbitrary unprotected nodes,
    ///   in which case every `Crash` is paired with a `Recover`, the hosted
    ///   state dies with the node, and the data clock jumps `δt` so no
    ///   correlation window straddles the outage.
    #[must_use]
    pub fn seeded(topology: &Topology, config: &ChurnPlanConfig) -> Self {
        assert!(topology.len() >= 2, "churn needs at least two nodes");
        let mut g = Generator {
            rng: StdRng::seed_from_u64(config.seed),
            config: config.clone(),
            actions: Vec::new(),
            clock: 1_000,
            next_sensor: 0,
            next_sub: 0,
            next_event: 0,
            up: BTreeMap::new(),
            departed: BTreeMap::new(),
            active: BTreeMap::new(),
            crashed: Vec::new(),
            hosted_ever: Vec::new(),
            nodes: topology.nodes().collect(),
            topo: topology.clone(),
        };
        for _ in 0..config.initial_sensors.max(1) {
            g.sensor_up();
        }
        let mut emitted = 0usize;
        while emitted < config.churn_actions {
            if !g.step() {
                continue;
            }
            emitted += 1;
            for _ in 0..config.events_per_action {
                g.publish();
            }
        }
        if config.with_crashes && config.crash_interior {
            let mut crashes = g
                .actions
                .iter()
                .filter(|a| matches!(a, ChurnAction::Crash { .. }))
                .count();
            let mut attempts = 0;
            while crashes < config.min_crashes && attempts < 64 {
                attempts += 1;
                if g.crash_interior() {
                    crashes += 1;
                    for _ in 0..config.events_per_action {
                        g.publish();
                    }
                }
            }
        }
        if config.with_moves {
            let mut moves = g
                .actions
                .iter()
                .filter(|a| matches!(a, ChurnAction::Move { .. }))
                .count();
            let mut attempts = 0;
            while moves < config.min_moves && attempts < 64 {
                attempts += 1;
                if g.move_sensor() {
                    moves += 1;
                    for _ in 0..config.events_per_action {
                        g.publish();
                    }
                }
            }
        }
        ChurnPlan { actions: g.actions }
    }

    /// The **stationary twin** of a mobile plan: every [`ChurnAction::Move`]
    /// is replaced by the equivalent fresh-identity sequence — retire the
    /// old identity at its current host (live handoffs only), bring a
    /// *fresh* sensor id up at the new node, and migrate every live
    /// subscription that references the moved sensor by cancelling and
    /// re-registering it with the dimension renamed. All later references
    /// (publishes, subscriptions, further moves, retractions) are renamed
    /// accordingly; event ids, values and timestamps are untouched.
    ///
    /// A correct mobility protocol makes the mobile plan and its twin
    /// produce the **identical** [`fsf_network::DeliveryLog`] on every
    /// engine: same per-subscription result sets *and* the same delivery
    /// count — full recall with zero duplicated deliveries, in one
    /// comparison (the mobility analogue of the recovery battery's
    /// uncrashed twin).
    ///
    /// `fresh_base` must exceed every sensor id the plan uses. Exactness
    /// precondition: when a subscription is migrated, the *other* sensors
    /// it references are up — otherwise the twin's re-registration is
    /// dropped as unanswerable by the distributed engines while the mobile
    /// plan keeps the original registration alive.
    #[must_use]
    pub fn stationary_twin(&self, fresh_base: u32) -> ChurnPlan {
        let mut alias: BTreeMap<SensorId, SensorId> = BTreeMap::new();
        let mut next_fresh = fresh_base;
        let mut up: BTreeSet<SensorId> = BTreeSet::new();
        let mut live_subs: BTreeMap<SubId, (NodeId, Subscription)> = BTreeMap::new();
        let mut out: Vec<ChurnAction> = Vec::new();
        let renamed = |sub: &Subscription, alias: &BTreeMap<SensorId, SensorId>| -> Subscription {
            let filters: Vec<(SensorId, ValueRange)> = sub
                .predicates()
                .iter()
                .map(|p| {
                    let fsf_model::DimKey::Sensor(s) = p.key else {
                        panic!("stationary twins need identified subscriptions")
                    };
                    (*alias.get(&s).unwrap_or(&s), p.range)
                })
                .collect();
            Subscription::identified(sub.id(), filters, sub.delta_t())
                .expect("renaming preserves validity")
        };
        for action in &self.actions {
            match action {
                ChurnAction::Move { node, from, adv } => {
                    let old = *alias.get(&adv.sensor).unwrap_or(&adv.sensor);
                    if up.contains(&adv.sensor) {
                        out.push(ChurnAction::SensorDown {
                            node: *from,
                            sensor: old,
                        });
                    }
                    let fresh = SensorId(next_fresh);
                    next_fresh += 1;
                    alias.insert(adv.sensor, fresh);
                    up.insert(adv.sensor);
                    out.push(ChurnAction::SensorUp {
                        node: *node,
                        adv: Advertisement {
                            sensor: fresh,
                            ..*adv
                        },
                    });
                    // live subscriptions referencing the moved sensor follow
                    // it to the fresh identity: cancel + re-register renamed
                    for (id, (sub_node, body)) in &live_subs {
                        if body
                            .dims()
                            .any(|d| d == fsf_model::DimKey::Sensor(adv.sensor))
                        {
                            out.push(ChurnAction::Unsubscribe {
                                node: *sub_node,
                                sub: *id,
                            });
                            out.push(ChurnAction::Subscribe {
                                node: *sub_node,
                                sub: renamed(body, &alias),
                            });
                        }
                    }
                }
                ChurnAction::SensorUp { node, adv } => {
                    up.insert(adv.sensor);
                    out.push(ChurnAction::SensorUp {
                        node: *node,
                        adv: Advertisement {
                            sensor: *alias.get(&adv.sensor).unwrap_or(&adv.sensor),
                            ..*adv
                        },
                    });
                }
                ChurnAction::SensorDown { node, sensor } => {
                    up.remove(sensor);
                    out.push(ChurnAction::SensorDown {
                        node: *node,
                        sensor: *alias.get(sensor).unwrap_or(sensor),
                    });
                }
                ChurnAction::Subscribe { node, sub } => {
                    live_subs.insert(sub.id(), (*node, sub.clone()));
                    out.push(ChurnAction::Subscribe {
                        node: *node,
                        sub: renamed(sub, &alias),
                    });
                }
                ChurnAction::Unsubscribe { sub, .. } => {
                    live_subs.remove(sub);
                    out.push(action.clone());
                }
                ChurnAction::Publish { node, event } => {
                    let mut e = *event;
                    e.sensor = *alias.get(&event.sensor).unwrap_or(&event.sensor);
                    out.push(ChurnAction::Publish {
                        node: *node,
                        event: e,
                    });
                }
                ChurnAction::Crash { node, .. } => {
                    // state hosted on the corpse dies in both worlds
                    live_subs.retain(|_, (n, _)| n != node);
                    out.push(action.clone());
                }
                ChurnAction::Recover | ChurnAction::Sever { .. } | ChurnAction::Heal { .. } => {
                    out.push(action.clone())
                }
            }
        }
        ChurnPlan { actions: out }
    }

    /// The teardown suffix: heal every link that is still severed (so the
    /// retraction floods can reach the whole tree again), unsubscribe
    /// every subscription that is still active, then retract every sensor
    /// that is still up — in that order, so operator retraction happens
    /// while its forwarding state is still addressable. State hosted on
    /// crashed nodes died with them and is skipped.
    #[must_use]
    pub fn teardown(&self) -> Vec<ChurnAction> {
        let mut up: BTreeMap<SensorId, NodeId> = BTreeMap::new();
        let mut active: BTreeMap<SubId, NodeId> = BTreeMap::new();
        let mut crashed: Vec<NodeId> = Vec::new();
        let mut severed: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for a in &self.actions {
            match a {
                ChurnAction::SensorUp { node, adv } => {
                    up.insert(adv.sensor, *node);
                }
                ChurnAction::SensorDown { sensor, .. } => {
                    up.remove(sensor);
                }
                ChurnAction::Move { node, adv, .. } => {
                    up.insert(adv.sensor, *node);
                }
                ChurnAction::Subscribe { node, sub } => {
                    active.insert(sub.id(), *node);
                }
                ChurnAction::Unsubscribe { sub, .. } => {
                    active.remove(sub);
                }
                ChurnAction::Crash { node, .. } => crashed.push(*node),
                ChurnAction::Sever { a, b } => {
                    severed.insert((*a.min(b), *a.max(b)));
                }
                ChurnAction::Heal { a, b } => {
                    severed.remove(&(*a.min(b), *a.max(b)));
                }
                ChurnAction::Recover | ChurnAction::Publish { .. } => {}
            }
        }
        let mut out = Vec::with_capacity(severed.len() + active.len() + up.len());
        for (a, b) in severed {
            out.push(ChurnAction::Heal { a, b });
        }
        for (sub, node) in active {
            if !crashed.contains(&node) {
                out.push(ChurnAction::Unsubscribe { node, sub });
            }
        }
        for (sensor, node) in up {
            if !crashed.contains(&node) {
                out.push(ChurnAction::SensorDown { node, sensor });
            }
        }
        out
    }

    /// This plan followed by its own teardown.
    #[must_use]
    pub fn with_teardown(mut self) -> Self {
        let mut tail = self.teardown();
        self.actions.append(&mut tail);
        self
    }

    /// Generate a seeded partition plan: bootstrap sensors on both sides
    /// of a chosen tree edge, register single-filter selection
    /// subscriptions (a mix of same-side and cross-cut pairs), publish a
    /// pre-split window, [`ChurnAction::Sever`] the edge, publish through
    /// the partition, [`ChurnAction::Heal`] it, and publish a post-heal
    /// window.
    ///
    /// The cut edge is the one splitting the tree most evenly (seeded
    /// tie-break), so both halves are substantial. Subscriptions use
    /// full-span value ranges, which makes the delivery oracle exact:
    /// a reading reaches a subscription iff a route exists from the
    /// sensor's host to the subscription's node at publish time — the
    /// property [`Self::partition_oracle`] computes and the reachable-twin
    /// battery checks against [`Self::connected_twin`].
    #[must_use]
    pub fn seeded_partition(topology: &Topology, config: &PartitionPlanConfig) -> Self {
        assert!(topology.len() >= 4, "a partition needs two halves");
        assert!(config.sensors >= 2, "both halves need a sensor");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // the cut: the tree edge whose removal splits most evenly
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for n in topology.nodes() {
            for &m in topology.neighbors(n) {
                if n.0 < m.0 {
                    edges.push((n, m));
                }
            }
        }
        let balance = |&(a, b): &(NodeId, NodeId)| {
            let mut t = topology.clone();
            t.sever_link(a, b).expect("enumerated edge");
            let labels = t.components();
            let small = labels
                .iter()
                .filter(|&&l| l == labels[a.0 as usize])
                .count();
            small.min(topology.len() - small)
        };
        let best = edges.iter().map(balance).max().expect("tree has edges");
        let candidates: Vec<(NodeId, NodeId)> =
            edges.into_iter().filter(|e| balance(e) == best).collect();
        let &cut = candidates.choose(&mut rng).expect("non-empty");
        let mut split = topology.clone();
        split.sever_link(cut.0, cut.1).expect("chosen edge exists");
        let labels = split.components();
        let side_a: Vec<NodeId> = topology
            .nodes()
            .filter(|n| labels[n.0 as usize] == labels[cut.0 .0 as usize])
            .collect();
        let side_b: Vec<NodeId> = topology
            .nodes()
            .filter(|n| labels[n.0 as usize] != labels[cut.0 .0 as usize])
            .collect();

        let mut actions = Vec::new();
        let mut clock = 1_000u64;
        // sensors alternate sides so each half keeps publishing while cut
        let mut hosts: Vec<(SensorId, NodeId, AttrId)> = Vec::new();
        for i in 0..config.sensors {
            let side = if i % 2 == 0 { &side_a } else { &side_b };
            let node = *side.choose(&mut rng).expect("non-empty side");
            let sensor = SensorId(i as u32);
            let attr = AttrId((i % 5) as u16);
            hosts.push((sensor, node, attr));
            actions.push(ChurnAction::SensorUp {
                node,
                adv: Advertisement {
                    sensor,
                    attr,
                    location: Point::new(f64::from(sensor.0), 0.0),
                },
            });
        }
        // single-filter full-span subscriptions: even ids land on their
        // sensor's own side (they keep delivering through the split), odd
        // ids on the far side (the split cuts them off)
        for i in 0..config.subscriptions.max(2) {
            let &(sensor, host, _) = hosts.choose(&mut rng).expect("sensors exist");
            let host_in_a = side_a.contains(&host);
            let same_side = i % 2 == 0;
            let side = if host_in_a == same_side {
                &side_a
            } else {
                &side_b
            };
            let node = *side.choose(&mut rng).expect("non-empty side");
            let sub = Subscription::identified(
                SubId(i as u64),
                vec![(sensor, ValueRange::new(0.0, config.value_span))],
                config.delta_t,
            )
            .expect("single full-span filter is valid");
            clock += config.delta_t;
            actions.push(ChurnAction::Subscribe { node, sub });
        }
        let mut next_event = 0u64;
        let mut publish_window =
            |actions: &mut Vec<ChurnAction>, clock: &mut u64, rng: &mut StdRng| {
                for _ in 0..config.events_per_phase {
                    let &(sensor, node, attr) = hosts.choose(rng).expect("sensors exist");
                    *clock += config.reading_interval;
                    actions.push(ChurnAction::Publish {
                        node,
                        event: Event {
                            id: EventId(next_event),
                            sensor,
                            attr,
                            location: Point::new(f64::from(sensor.0), 0.0),
                            value: rng.gen_range(0.0..config.value_span),
                            timestamp: Timestamp(*clock),
                        },
                    });
                    next_event += 1;
                }
            };
        publish_window(&mut actions, &mut clock, &mut rng);
        // correlation epoch around the outage, as for crashes and moves
        clock += config.delta_t;
        actions.push(ChurnAction::Sever { a: cut.0, b: cut.1 });
        publish_window(&mut actions, &mut clock, &mut rng);
        clock += config.delta_t;
        actions.push(ChurnAction::Heal { a: cut.0, b: cut.1 });
        publish_window(&mut actions, &mut clock, &mut rng);
        ChurnPlan { actions }
    }

    /// The **connected twin** of a partition plan: the same actions with
    /// every [`ChurnAction::Sever`] and [`ChurnAction::Heal`] removed —
    /// the world in which the link never went down. Restricted to the
    /// subscription/event pairs that stayed connected through every split
    /// (see [`Self::partition_oracle`]), a correct partition protocol
    /// makes the partitioned run and this twin produce identical
    /// [`fsf_network::DeliveryLog`] entries.
    #[must_use]
    pub fn connected_twin(&self) -> ChurnPlan {
        ChurnPlan {
            actions: self
                .actions
                .iter()
                .filter(|a| !matches!(a, ChurnAction::Sever { .. } | ChurnAction::Heal { .. }))
                .cloned()
                .collect(),
        }
    }

    /// Replay this plan over `topology` (tracking severs, heals, and
    /// regrafts) and classify its subscriptions and events for the
    /// reachable-twin comparison: which subscriptions stayed connected to
    /// every sensor they reference through every severed window, and
    /// which events were published while any link was down.
    ///
    /// Connectivity is direct sensor-host-to-subscription-node tree
    /// reachability — right for every engine that routes along the tree
    /// path. For the centralized baseline use
    /// [`Self::partition_oracle_via`] with the collection hub.
    #[must_use]
    pub fn partition_oracle(&self, topology: &Topology) -> PartitionOracle {
        self.partition_oracle_via(topology, None)
    }

    /// [`Self::partition_oracle`] with an optional routing hub: when `via`
    /// is set, a sensor reaches a subscription only if both can reach the
    /// hub — the centralized baseline's star routing, where every reading
    /// and result transits the collection point regardless of where the
    /// two endpoints sit.
    #[must_use]
    pub fn partition_oracle_via(
        &self,
        topology: &Topology,
        via: Option<NodeId>,
    ) -> PartitionOracle {
        let mut topo = topology.clone();
        let mut hosts: BTreeMap<SensorId, NodeId> = BTreeMap::new();
        let mut live: BTreeMap<SubId, (NodeId, Vec<SensorId>)> = BTreeMap::new();
        let mut all: BTreeSet<SubId> = BTreeSet::new();
        let mut severed_subs: BTreeSet<SubId> = BTreeSet::new();
        let mut split_events: Vec<EventId> = Vec::new();
        let routed = move |topo: &Topology, from: NodeId, to: NodeId| match via {
            Some(hub) => topo.reachable(from, hub) && topo.reachable(hub, to),
            None => topo.reachable(from, to),
        };
        let cut_off = |topo: &Topology,
                       hosts: &BTreeMap<SensorId, NodeId>,
                       node: NodeId,
                       sensors: &[SensorId]| {
            sensors
                .iter()
                .any(|s| hosts.get(s).is_some_and(|&host| !routed(topo, host, node)))
        };
        for action in &self.actions {
            match action {
                ChurnAction::SensorUp { node, adv } | ChurnAction::Move { node, adv, .. } => {
                    hosts.insert(adv.sensor, *node);
                }
                ChurnAction::SensorDown { sensor, .. } => {
                    hosts.remove(sensor);
                }
                ChurnAction::Subscribe { node, sub } => {
                    let sensors: Vec<SensorId> = sub
                        .dims()
                        .map(|d| {
                            let fsf_model::DimKey::Sensor(s) = d else {
                                panic!("partition oracles need identified subscriptions")
                            };
                            s
                        })
                        .collect();
                    all.insert(sub.id());
                    if topo.has_severed_links() && cut_off(&topo, &hosts, *node, &sensors) {
                        severed_subs.insert(sub.id());
                    }
                    live.insert(sub.id(), (*node, sensors));
                }
                ChurnAction::Unsubscribe { sub, .. } => {
                    live.remove(sub);
                }
                ChurnAction::Sever { a, b } => {
                    topo.sever_link(*a, *b).expect("plan severs a live edge");
                    for (id, (node, sensors)) in &live {
                        if cut_off(&topo, &hosts, *node, sensors) {
                            severed_subs.insert(*id);
                        }
                    }
                }
                ChurnAction::Heal { a, b } => {
                    topo.heal_link(*a, *b).expect("plan heals a severed edge");
                }
                ChurnAction::Publish { event, .. } => {
                    if topo.has_severed_links() {
                        split_events.push(event.id);
                    }
                }
                ChurnAction::Crash { node, anchor } => {
                    topo = topo
                        .regraft(*node, *anchor)
                        .expect("plan crashes are anchored on a neighbor");
                }
                ChurnAction::Recover => {}
            }
        }
        PartitionOracle {
            connected_subs: all.difference(&severed_subs).copied().collect(),
            severed_subs: severed_subs.into_iter().collect(),
            split_events,
        }
    }

    /// Schedule this plan on the virtual clock: assign every action the
    /// virtual time at which the timed runner applies it, **without**
    /// flushing between actions (floods genuinely interleave).
    ///
    /// The schedule replays the generator's data clock — a `Publish` fires
    /// at its reading's own timestamp, a `Subscribe` advances the clock by
    /// the subscription's `δt` (the registration-epoch jump) — and adds
    /// `config.churn_gap` ticks of virtual time in front of every churn
    /// action proper. The gap is the *flood-drain margin*: sized at or
    /// above `diameter × max-hop-latency` it guarantees the floods of the
    /// preceding actions have drained before state changes, which keeps the
    /// five engines delivery-equivalent (their transient disagreement
    /// windows never overlap a state change). Event floods still race each
    /// other — readings are only `reading_interval` apart — and retraction
    /// floods still chase their own advertisement floods, so the
    /// interleaving is real where it is semantically allowed.
    #[must_use]
    pub fn timed(&self, config: &TimedReplayConfig) -> TimedPlan {
        let mut data_clock = config.initial_clock;
        let mut offset = 0u64;
        let mut actions = Vec::with_capacity(self.actions.len());
        for action in &self.actions {
            let at = match action {
                ChurnAction::Publish { event, .. } => {
                    data_clock = data_clock.max(event.timestamp.0);
                    data_clock + offset
                }
                ChurnAction::Subscribe { sub, .. } => {
                    offset += config.churn_gap;
                    let at = data_clock + offset;
                    data_clock += sub.delta_t();
                    at
                }
                // crashes, recoveries, moves, severs and heals leave a
                // widened margin *behind* them: each is a cascade (adv/move
                // flood → operator re-split → downstream re-forwards; a
                // heal's reconciliation handshake is the same shape), so
                // whatever follows must wait several flood-drain gaps
                ChurnAction::Crash { .. }
                | ChurnAction::Recover
                | ChurnAction::Move { .. }
                | ChurnAction::Sever { .. }
                | ChurnAction::Heal { .. } => {
                    offset += config.churn_gap;
                    let at = data_clock + offset;
                    offset += config.churn_gap * (Self::RECOVERY_GAP_FACTOR - 1);
                    at
                }
                _ => {
                    offset += config.churn_gap;
                    data_clock + offset
                }
            };
            actions.push(TimedAction {
                at,
                action: action.clone(),
            });
        }
        TimedPlan { actions }
    }
}

/// Parameters of [`ChurnPlan::timed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedReplayConfig {
    /// Virtual time of the first action (matches the seeded generator's
    /// initial data clock so publish times line up).
    pub initial_clock: u64,
    /// Extra virtual ticks inserted before every churn action proper (see
    /// [`ChurnPlan::timed`]). Zero means state changes race the floods of
    /// the immediately preceding actions.
    pub churn_gap: u64,
}

impl Default for TimedReplayConfig {
    fn default() -> Self {
        TimedReplayConfig {
            initial_clock: 1_000,
            churn_gap: 0,
        }
    }
}

impl TimedReplayConfig {
    /// A config whose churn gap safely drains any flood on `topology`
    /// under `latency`: tree diameter × the model's worst hop delay, plus
    /// one tick of slack.
    #[must_use]
    pub fn drained(topology: &Topology, latency: &fsf_network::LatencyModel) -> Self {
        TimedReplayConfig {
            initial_clock: 1_000,
            churn_gap: topology.diameter() as u64 * latency.max_hop() + 1,
        }
    }
}

/// One churn action scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedAction {
    /// Virtual time the runner applies the action at.
    pub at: u64,
    /// The action.
    pub action: ChurnAction,
}

/// A churn plan scheduled on the virtual clock (non-decreasing times).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimedPlan {
    /// The scheduled actions, in execution (= time) order.
    pub actions: Vec<TimedAction>,
}

impl TimedPlan {
    /// Virtual time of the last action (0 for an empty plan).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.actions.last().map_or(0, |a| a.at)
    }
}

/// Bookkeeping of the seeded generator (see [`ChurnPlan::seeded`]).
struct Generator {
    rng: StdRng,
    config: ChurnPlanConfig,
    actions: Vec<ChurnAction>,
    clock: u64,
    next_sensor: u32,
    next_sub: u64,
    next_event: u64,
    up: BTreeMap<SensorId, (NodeId, AttrId)>,
    /// Departed sensors (via `SensorDown`, not crashes) — the candidates
    /// for id-reusing re-appearance moves.
    departed: BTreeMap<SensorId, (NodeId, AttrId)>,
    active: BTreeMap<SubId, NodeId>,
    crashed: Vec<NodeId>,
    /// Nodes that hosted a sensor or subscription at some point (excluded
    /// from crashing in leaf mode: their state must stay addressable for
    /// teardown).
    hosted_ever: Vec<NodeId>,
    nodes: Vec<NodeId>,
    /// The topology as it evolves under regrafts — later crash anchors
    /// must be neighbors in the *current* tree, not the original one.
    topo: Topology,
}

impl Generator {
    fn pick_node(&mut self) -> NodeId {
        loop {
            let n = *self
                .nodes
                .choose(&mut self.rng)
                .expect("non-empty topology");
            if !self.crashed.contains(&n) {
                return n;
            }
        }
    }

    fn sensor_up(&mut self) {
        let node = self.pick_node();
        let sensor = SensorId(self.next_sensor);
        let attr = AttrId((self.next_sensor % 5) as u16);
        self.next_sensor += 1;
        self.hosted_ever.push(node);
        self.up.insert(sensor, (node, attr));
        self.actions.push(ChurnAction::SensorUp {
            node,
            adv: Advertisement {
                sensor,
                attr,
                location: Point::new(f64::from(sensor.0), 0.0),
            },
        });
    }

    fn publish(&mut self) {
        let sensors: Vec<(SensorId, NodeId, AttrId)> =
            self.up.iter().map(|(&s, &(n, a))| (s, n, a)).collect();
        let Some(&(sensor, node, attr)) = sensors.choose(&mut self.rng) else {
            return;
        };
        self.clock += self.config.reading_interval;
        let event = Event {
            id: EventId(self.next_event),
            sensor,
            attr,
            location: Point::new(f64::from(sensor.0), 0.0),
            value: self.rng.gen_range(0.0..self.config.value_span),
            timestamp: Timestamp(self.clock),
        };
        self.next_event += 1;
        self.actions.push(ChurnAction::Publish { node, event });
    }

    /// Re-host a sensor id (the id-reusing action): a live sensor hands
    /// off to a different node, or a departed id returns at a new station.
    /// Jumps the data clock by `δt` — handoffs open a fresh correlation
    /// epoch, so no window straddles the move. Returns `false` when no
    /// candidate (sensor, destination) pair exists.
    fn move_sensor(&mut self) -> bool {
        let pool: Vec<(SensorId, NodeId, AttrId, bool)> = self
            .up
            .iter()
            .map(|(&s, &(n, a))| (s, n, a, true))
            .chain(self.departed.iter().map(|(&s, &(n, a))| (s, n, a, false)))
            .collect();
        let Some(&(sensor, from, attr, was_up)) = pool.choose(&mut self.rng) else {
            return false;
        };
        let destinations: Vec<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|&n| n != from && !self.crashed.contains(&n))
            .collect();
        let Some(&to) = destinations.choose(&mut self.rng) else {
            return false;
        };
        if !was_up {
            self.departed.remove(&sensor);
        }
        self.up.insert(sensor, (to, attr));
        self.hosted_ever.push(to);
        self.clock += self.config.delta_t;
        self.actions.push(ChurnAction::Move {
            node: to,
            from,
            adv: Advertisement {
                sensor,
                attr,
                location: Point::new(f64::from(sensor.0), 0.0),
            },
        });
        true
    }

    /// Crash an arbitrary live node: its hosted state dies, the tracked
    /// topology regrafts, the clock jumps a correlation epoch, and the
    /// `Crash`/`Recover` pair is emitted. Returns `false` when no eligible
    /// candidate exists (everything protected, or the crash would take the
    /// last live sensor down).
    fn crash_interior(&mut self) -> bool {
        let candidates: Vec<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|&n| {
                !self.crashed.contains(&n)
                    && !self.config.protected_nodes.contains(&n)
                    && self
                        .topo
                        .neighbors(n)
                        .iter()
                        .any(|a| !self.crashed.contains(a))
                    // keep at least one sensor alive so publishes continue
                    && self.up.values().any(|&(host, _)| host != n)
            })
            .collect();
        let Some(&node) = candidates.choose(&mut self.rng) else {
            return false;
        };
        let anchor = *self
            .topo
            .neighbors(node)
            .iter()
            .find(|a| !self.crashed.contains(a))
            .expect("filtered for a live neighbor");
        self.topo = self
            .topo
            .regraft(node, anchor)
            .expect("anchor is a current neighbor");
        self.crashed.push(node);
        self.up.retain(|_, &mut (host, _)| host != node);
        self.active.retain(|_, &mut host| host != node);
        // correlation epoch around the outage: pre-crash readings must not
        // be able to complete joins with post-recovery ones, or the five
        // engines' transient disagreement during the outage would leak
        // into the delivered results
        self.clock += self.config.delta_t;
        self.actions.push(ChurnAction::Crash { node, anchor });
        self.actions.push(ChurnAction::Recover);
        true
    }

    /// One churn action; returns `false` if the rolled action was not
    /// applicable in the current state (caller re-rolls).
    fn step(&mut self) -> bool {
        let roll = self.rng.gen_range(0u32..100);
        match roll {
            // subscribe — the bread-and-butter action
            0..=34 => {
                if self.up.is_empty() {
                    return false;
                }
                let arity = self
                    .rng
                    .gen_range(1..=self.config.max_arity.min(self.up.len()));
                let mut pool: Vec<SensorId> = self.up.keys().copied().collect();
                pool.shuffle(&mut self.rng);
                let filters: Vec<(SensorId, ValueRange)> = pool[..arity]
                    .iter()
                    .map(|&s| {
                        let half = self.config.range_half_width * self.rng.gen_range(0.5..1.5);
                        let hi_center = (self.config.value_span - half).max(half + 0.1);
                        let center = self.rng.gen_range(half..hi_center);
                        (s, ValueRange::new(center - half, center + half))
                    })
                    .collect();
                let node = self.pick_node();
                let sub =
                    Subscription::identified(SubId(self.next_sub), filters, self.config.delta_t)
                        .expect("generated subscription is valid");
                // registration epoch: pre-registration events must not be
                // able to correlate with post-registration ones (see the
                // generator invariants on `ChurnPlan::seeded`)
                self.clock += self.config.delta_t;
                self.active.insert(SubId(self.next_sub), node);
                self.next_sub += 1;
                self.hosted_ever.push(node);
                self.actions.push(ChurnAction::Subscribe { node, sub });
                true
            }
            // unsubscribe an active subscription
            35..=54 => {
                let subs: Vec<(SubId, NodeId)> =
                    self.active.iter().map(|(&s, &n)| (s, n)).collect();
                let Some(&(sub, node)) = subs.choose(&mut self.rng) else {
                    return false;
                };
                self.active.remove(&sub);
                self.actions.push(ChurnAction::Unsubscribe { node, sub });
                true
            }
            // a brand-new sensor joins
            55..=69 => {
                self.sensor_up();
                true
            }
            // a sensor departs (keep at least one up)
            70..=84 => {
                if self.up.len() <= 1 {
                    return false;
                }
                let sensors: Vec<(SensorId, NodeId, AttrId)> =
                    self.up.iter().map(|(&s, &(n, a))| (s, n, a)).collect();
                let &(sensor, node, attr) = sensors.choose(&mut self.rng).expect("non-empty");
                self.up.remove(&sensor);
                self.departed.insert(sensor, (node, attr));
                self.actions.push(ChurnAction::SensorDown { node, sensor });
                true
            }
            // sensor mobility / fault injection share the top of the roll
            // table; the split only exists when moves are enabled, so plans
            // generated without them replay byte-identically
            _ => {
                if self.config.with_moves && (!self.config.with_crashes || roll < 93) {
                    return self.move_sensor();
                }
                if !self.config.with_crashes {
                    return false;
                }
                if self.config.crash_interior {
                    return self.crash_interior();
                }
                // equivalence-preserving mode: stateless leaves only (a
                // leaf regraft changes no surviving path, and a stateless
                // corpse takes no state with it)
                let candidate = self.nodes.iter().copied().find(|&n| {
                    self.topo.degree(n) == 1
                        && !self.crashed.contains(&n)
                        && !self.hosted_ever.contains(&n)
                        && !self.config.protected_nodes.contains(&n)
                        && !self.crashed.contains(&self.topo.neighbors(n)[0])
                });
                let Some(node) = candidate else {
                    return false;
                };
                let anchor = self.topo.neighbors(node)[0];
                self.crashed.push(node);
                self.actions.push(ChurnAction::Crash { node, anchor });
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_network::builders;

    #[test]
    fn seeded_plans_are_deterministic() {
        let topo = builders::balanced(31, 2);
        let cfg = ChurnPlanConfig::default();
        let a = ChurnPlan::seeded(&topo, &cfg);
        let b = ChurnPlan::seeded(&topo, &cfg);
        assert_eq!(a, b);
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(a, ChurnPlan::seeded(&topo, &other));
    }

    #[test]
    fn seeded_plan_hits_the_requested_churn_volume() {
        let topo = builders::balanced(63, 2);
        let cfg = ChurnPlanConfig {
            churn_actions: 50,
            ..ChurnPlanConfig::default()
        };
        let plan = ChurnPlan::seeded(&topo, &cfg);
        // bootstrap sensors count as churn actions too
        assert!(plan.churn_action_count() >= 50 + cfg.initial_sensors);
        // publishes interleave
        assert!(plan.actions.iter().any(|a| !a.is_churn()));
    }

    #[test]
    fn generator_never_publishes_from_a_downed_sensor() {
        let topo = builders::balanced(63, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 120,
                ..ChurnPlanConfig::default()
            },
        );
        let mut up: Vec<SensorId> = Vec::new();
        for a in &plan.actions {
            match a {
                ChurnAction::SensorUp { adv, .. } => {
                    assert!(!up.contains(&adv.sensor), "fresh SensorUp over a live id");
                    up.push(adv.sensor);
                }
                // id reuse is legal — it goes through the move protocol
                ChurnAction::Move { adv, .. } if !up.contains(&adv.sensor) => {
                    up.push(adv.sensor);
                }
                ChurnAction::Move { .. } => {}
                ChurnAction::SensorDown { sensor, .. } => {
                    up.retain(|s| s != sensor);
                }
                ChurnAction::Publish { event, .. } => {
                    assert!(up.contains(&event.sensor), "reading from a ghost");
                }
                ChurnAction::Subscribe { sub, .. } => {
                    for d in sub.dims() {
                        let fsf_model::DimKey::Sensor(s) = d else {
                            panic!("identified subscriptions only")
                        };
                        assert!(up.contains(&s), "subscription over a ghost sensor");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn timed_schedule_is_monotone_and_fires_publishes_at_their_timestamps() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(&topo, &ChurnPlanConfig::default()).with_teardown();
        let cfg = TimedReplayConfig {
            initial_clock: 1_000,
            churn_gap: 11,
        };
        let timed = plan.timed(&cfg);
        assert_eq!(timed.actions.len(), plan.actions.len());
        // non-decreasing virtual times
        assert!(
            timed.actions.windows(2).all(|w| w[0].at <= w[1].at),
            "schedule not monotone"
        );
        assert_eq!(timed.horizon(), timed.actions.last().unwrap().at);
        // every publish fires at its reading's own timestamp plus the
        // accumulated churn-gap offset — never before the reading exists
        let mut gaps = 0u64;
        for t in &timed.actions {
            if t.action.is_churn() {
                gaps += cfg.churn_gap;
            }
            if let ChurnAction::Publish { event, .. } = &t.action {
                assert_eq!(t.at, event.timestamp.0 + gaps, "publish off schedule");
            }
        }
        // churn actions are strictly separated from their predecessor
        for w in timed.actions.windows(2) {
            if w[1].action.is_churn() {
                assert!(w[1].at >= w[0].at + cfg.churn_gap, "gap not applied");
            }
        }
    }

    #[test]
    fn drained_config_scales_with_topology_and_latency() {
        use fsf_network::LatencyModel;
        let topo = builders::line(8); // diameter 7
        let cfg = TimedReplayConfig::drained(&topo, &LatencyModel::Uniform { hop: 3 });
        assert_eq!(cfg.churn_gap, 7 * 3 + 1);
        let zero = TimedReplayConfig::drained(&topo, &LatencyModel::Zero);
        assert_eq!(zero.churn_gap, 1);
        assert_eq!(TimedReplayConfig::default().churn_gap, 0);
    }

    #[test]
    fn teardown_retracts_exactly_the_survivors() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(&topo, &ChurnPlanConfig::default());
        let tail = plan.teardown();
        // after appending the teardown, a second teardown is empty
        let full = plan.with_teardown();
        assert!(!tail.is_empty());
        assert!(full.teardown().is_empty(), "teardown is exhaustive");
    }

    #[test]
    fn interior_crashes_pair_with_recovery_and_keep_invariants() {
        let topo = builders::balanced(63, 2);
        let median = topo.median();
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                with_crashes: true,
                crash_interior: true,
                protected_nodes: vec![median],
                churn_actions: 150,
                ..ChurnPlanConfig::default()
            },
        );
        // every crash is immediately followed by its Recover twin
        let mut crashes: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, a) in plan.actions.iter().enumerate() {
            if let ChurnAction::Crash { node, anchor } = a {
                crashes.push((*node, *anchor));
                assert_eq!(
                    plan.actions.get(i + 1),
                    Some(&ChurnAction::Recover),
                    "crash without a paired recover"
                );
            }
        }
        assert!(!crashes.is_empty(), "150 actions should include crashes");
        assert!(
            crashes.iter().any(|&(n, _)| topo.degree(n) > 1),
            "interior mode should crash non-leaves: {crashes:?}"
        );
        // the protected median survives, and every anchor is a live
        // neighbor in the *evolving* tree — replay the regrafts to check
        let mut topo_now = topo.clone();
        for &(node, anchor) in &crashes {
            assert_ne!(node, median, "protected node crashed");
            topo_now = topo_now
                .regraft(node, anchor)
                .expect("anchor must be a current neighbor");
        }
        // dead state stays dead: no publishes from crashed-host sensors,
        // no new subscriptions over them, no activity on crashed nodes
        let mut crashed: Vec<NodeId> = Vec::new();
        let mut up: BTreeMap<SensorId, NodeId> = BTreeMap::new();
        for a in &plan.actions {
            match a {
                ChurnAction::SensorUp { node, adv } => {
                    assert!(!crashed.contains(node), "sensor on a corpse");
                    up.insert(adv.sensor, *node);
                }
                ChurnAction::SensorDown { sensor, .. } => {
                    up.remove(sensor);
                }
                ChurnAction::Move { node, adv, .. } => {
                    assert!(!crashed.contains(node), "sensor moved onto a corpse");
                    up.insert(adv.sensor, *node);
                }
                ChurnAction::Crash { node, .. } => {
                    crashed.push(*node);
                    up.retain(|_, host| host != node);
                }
                ChurnAction::Publish { node, event } => {
                    assert!(up.contains_key(&event.sensor), "reading from a ghost");
                    assert!(!crashed.contains(node), "reading from a corpse");
                }
                ChurnAction::Subscribe { node, sub } => {
                    assert!(!crashed.contains(node), "subscription on a corpse");
                    for d in sub.dims() {
                        let fsf_model::DimKey::Sensor(s) = d else {
                            panic!("identified subscriptions only")
                        };
                        assert!(up.contains_key(&s), "subscription over a dead sensor");
                    }
                }
                ChurnAction::Unsubscribe { .. }
                | ChurnAction::Recover
                | ChurnAction::Sever { .. }
                | ChurnAction::Heal { .. } => {}
            }
        }
    }

    #[test]
    fn timed_schedule_gives_crashes_the_recovery_margin() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                with_crashes: true,
                crash_interior: true,
                protected_nodes: vec![topo.median()],
                churn_actions: 60,
                ..ChurnPlanConfig::default()
            },
        );
        let cfg = TimedReplayConfig {
            initial_clock: 1_000,
            churn_gap: 5,
        };
        let timed = plan.timed(&cfg);
        assert!(
            timed.actions.windows(2).all(|w| w[0].at <= w[1].at),
            "schedule not monotone"
        );
        // the settle margin sits *behind* a crash/recover: whatever comes
        // next waits RECOVERY_GAP_FACTOR flood-drain gaps for the repair
        // cascade, while the crash itself only needs the ordinary gap
        let margin = cfg.churn_gap * ChurnPlan::RECOVERY_GAP_FACTOR;
        let mut saw_crash = false;
        for (i, t) in timed.actions.iter().enumerate() {
            if matches!(t.action, ChurnAction::Crash { .. } | ChurnAction::Recover) {
                saw_crash = true;
                if let Some(next) = timed.actions.get(i + 1) {
                    assert!(
                        next.at >= t.at + margin,
                        "action after crash/recover at {} lacks the {margin}-tick settle margin",
                        t.at
                    );
                }
            }
        }
        assert!(saw_crash);
    }

    #[test]
    fn partition_plans_cut_one_edge_publish_through_it_and_heal() {
        let topo = builders::balanced(31, 2);
        let cfg = PartitionPlanConfig::default();
        let plan = ChurnPlan::seeded_partition(&topo, &cfg);
        assert_eq!(plan, ChurnPlan::seeded_partition(&topo, &cfg));
        let severs: Vec<&ChurnAction> = plan
            .actions
            .iter()
            .filter(|a| matches!(a, ChurnAction::Sever { .. }))
            .collect();
        let heals: Vec<&ChurnAction> = plan
            .actions
            .iter()
            .filter(|a| matches!(a, ChurnAction::Heal { .. }))
            .collect();
        assert_eq!(severs.len(), 1);
        assert_eq!(heals.len(), 1);
        let ChurnAction::Sever { a, b } = severs[0] else {
            unreachable!()
        };
        assert!(topo.neighbors(*a).contains(b), "cut must be a tree edge");
        assert_eq!(heals[0], &ChurnAction::Heal { a: *a, b: *b });
        // the cut splits evenly enough that both halves are substantial
        let mut split = topo.clone();
        split.sever_link(*a, *b).unwrap();
        let labels = split.components();
        let side = labels.iter().filter(|&&l| l == labels[0]).count();
        assert!(side.min(topo.len() - side) >= topo.len() / 3);
        // each half hosts a sensor, so both keep publishing while cut
        let mut sides_hosting: BTreeSet<u32> = BTreeSet::new();
        for action in &plan.actions {
            if let ChurnAction::SensorUp { node, .. } = action {
                sides_hosting.insert(labels[node.0 as usize]);
            }
        }
        assert_eq!(sides_hosting.len(), 2, "sensors must straddle the cut");
        // every publish window is non-empty
        let sever_at = plan
            .actions
            .iter()
            .position(|x| matches!(x, ChurnAction::Sever { .. }))
            .unwrap();
        let heal_at = plan
            .actions
            .iter()
            .position(|x| matches!(x, ChurnAction::Heal { .. }))
            .unwrap();
        let publishes = |range: &[ChurnAction]| {
            range
                .iter()
                .filter(|x| matches!(x, ChurnAction::Publish { .. }))
                .count()
        };
        assert_eq!(publishes(&plan.actions[..sever_at]), cfg.events_per_phase);
        assert_eq!(
            publishes(&plan.actions[sever_at..heal_at]),
            cfg.events_per_phase
        );
        assert_eq!(publishes(&plan.actions[heal_at..]), cfg.events_per_phase);
    }

    #[test]
    fn the_connected_twin_drops_exactly_the_link_actions() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded_partition(&topo, &PartitionPlanConfig::default());
        let twin = plan.connected_twin();
        assert_eq!(twin.actions.len(), plan.actions.len() - 2);
        assert!(twin
            .actions
            .iter()
            .all(|a| !matches!(a, ChurnAction::Sever { .. } | ChurnAction::Heal { .. })));
        // everything else survives in order
        let kept: Vec<&ChurnAction> = plan
            .actions
            .iter()
            .filter(|a| !matches!(a, ChurnAction::Sever { .. } | ChurnAction::Heal { .. }))
            .collect();
        assert!(twin.actions.iter().zip(kept).all(|(t, k)| t == k));
    }

    #[test]
    fn the_partition_oracle_classifies_by_reachability_across_the_cut() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded_partition(&topo, &PartitionPlanConfig::default());
        let oracle = plan.partition_oracle(&topo);
        // the generator aims half its subscriptions across the cut
        assert!(!oracle.connected_subs.is_empty(), "no same-side subs");
        assert!(!oracle.severed_subs.is_empty(), "no cross-cut subs");
        assert!(!oracle.split_events.is_empty(), "no split-window events");
        // recompute one classification by hand: a severed sub's node must
        // be unreachable from its sensor's host in the cut topology
        let ChurnAction::Sever { a, b } = *plan
            .actions
            .iter()
            .find(|x| matches!(x, ChurnAction::Sever { .. }))
            .unwrap()
        else {
            unreachable!()
        };
        let mut split = topo.clone();
        split.sever_link(a, b).unwrap();
        let mut hosts: BTreeMap<SensorId, NodeId> = BTreeMap::new();
        for action in &plan.actions {
            match action {
                ChurnAction::SensorUp { node, adv } => {
                    hosts.insert(adv.sensor, *node);
                }
                ChurnAction::Subscribe { node, sub } => {
                    let fsf_model::DimKey::Sensor(s) = sub.dims().next().unwrap() else {
                        panic!("identified")
                    };
                    let expected_cut = !split.reachable(hosts[&s], *node);
                    assert_eq!(
                        oracle.severed_subs.contains(&sub.id()),
                        expected_cut,
                        "sub {:?} misclassified",
                        sub.id()
                    );
                }
                _ => {}
            }
        }
        // the teardown of a still-severed plan heals first
        let truncated = ChurnPlan {
            actions: plan
                .actions
                .iter()
                .take_while(|x| !matches!(x, ChurnAction::Heal { .. }))
                .cloned()
                .collect(),
        };
        assert_eq!(
            truncated.teardown().first(),
            Some(&ChurnAction::Heal { a, b }),
            "teardown must restore connectivity before retracting"
        );
    }

    #[test]
    fn crashes_only_hit_stateless_leaves() {
        let topo = builders::balanced(63, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                with_crashes: true,
                churn_actions: 200,
                ..ChurnPlanConfig::default()
            },
        );
        let crashes: Vec<&ChurnAction> = plan
            .actions
            .iter()
            .filter(|a| matches!(a, ChurnAction::Crash { .. }))
            .collect();
        assert!(!crashes.is_empty(), "200 actions should include a crash");
        for c in crashes {
            let ChurnAction::Crash { node, anchor } = c else {
                unreachable!()
            };
            assert_eq!(topo.degree(*node), 1, "only leaves crash");
            assert_eq!(topo.neighbors(*node)[0], *anchor);
            for a in &plan.actions {
                match a {
                    ChurnAction::SensorUp { node: n, .. }
                    | ChurnAction::Subscribe { node: n, .. }
                    | ChurnAction::Publish { node: n, .. } => {
                        assert_ne!(n, node, "crashed node hosted state");
                    }
                    _ => {}
                }
            }
        }
    }
}
