//! Teardown invariants: a fully retracted network holds no residual state.

use fsf_engines::{Engine, NodeFootprint};

/// The per-node residual state that survived — empty iff the engine is
/// clean. Downed (crashed) nodes are excluded: their state died with them.
#[must_use]
pub fn leaks(engine: &dyn Engine) -> Vec<NodeFootprint> {
    engine
        .footprint()
        .into_iter()
        .filter(|f| !f.is_clean())
        .collect()
}

/// Assert that a fully torn-down engine returned to its post-bootstrap
/// empty state: no operators, no stored events, no advertisements, no
/// forwarding routes on any surviving node.
///
/// # Panics
/// Panics with a per-node leak listing otherwise.
pub fn assert_clean(engine: &dyn Engine) {
    let leaked = leaks(engine);
    assert!(
        leaked.is_empty(),
        "{}: residual state after full teardown: {leaked:?}",
        engine.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChurnPlan, ChurnPlanConfig};
    use crate::runner::run_plan;
    use fsf_engines::EngineKind;
    use fsf_network::builders;

    #[test]
    fn torn_down_engines_are_clean_and_interrupted_ones_are_not() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 15,
                ..ChurnPlanConfig::default()
            },
        );
        for kind in EngineKind::ALL {
            let mut engine = kind.build(topo.clone(), 60, 42);
            run_plan(engine.as_mut(), &plan);
            assert!(
                !leaks(engine.as_mut()).is_empty(),
                "{kind}: a live deployment must hold state"
            );
            let tail = ChurnPlan::scripted(plan.teardown());
            run_plan(engine.as_mut(), &tail);
            assert_clean(engine.as_mut());
        }
    }
}
