//! Replay churn plans through any engine — serialized (flush after every
//! action) or timed (actions fire on the virtual clock while earlier
//! floods are still in flight).

use crate::plan::{ChurnAction, ChurnPlan, TimedPlan};
use fsf_engines::Engine;

/// Apply one action to an engine (without flushing).
pub fn apply_action(engine: &mut dyn Engine, action: &ChurnAction) {
    match action {
        ChurnAction::SensorUp { node, adv } => engine.inject_sensor(*node, *adv),
        ChurnAction::SensorDown { node, sensor } => engine.retract_sensor(*node, *sensor),
        ChurnAction::Subscribe { node, sub } => engine.inject_subscription(*node, sub.clone()),
        ChurnAction::Unsubscribe { node, sub } => engine.retract_subscription(*node, *sub),
        ChurnAction::Publish { node, event } => engine.inject_event(*node, *event),
        ChurnAction::Crash { node, anchor } => {
            engine
                .crash_node(*node, *anchor)
                .expect("plan crashes are anchored on a neighbor");
        }
        ChurnAction::Move { node, adv, .. } => engine.move_sensor(*node, *adv),
        ChurnAction::Recover => engine.recover(),
    }
}

/// Replay a whole plan, flushing the network to quiescence after every
/// action so all engines observe the same serialized history (the paper's
/// requirement that every approach sees identical inputs, extended to
/// churn).
pub fn run_plan(engine: &mut dyn Engine, plan: &ChurnPlan) {
    for action in &plan.actions {
        apply_action(engine, action);
        engine.flush();
    }
}

/// Replay a timed plan on the virtual clock: advance the network to each
/// action's scheduled time (delivering exactly the messages due by then —
/// **no** per-action flush), apply the action, and finally run the
/// remaining in-flight messages to quiescence. Returns the virtual time at
/// quiescence.
///
/// With a nonzero latency model this is the setting the run-to-quiescence
/// runner cannot express: a retraction injected while its own
/// advertisement flood is still in flight, operators racing event floods,
/// crashes purging in-flight messages.
pub fn run_plan_timed(engine: &mut dyn Engine, plan: &TimedPlan) -> u64 {
    for timed in &plan.actions {
        engine.run_until(timed.at);
        apply_action(engine, &timed.action);
    }
    engine.flush();
    engine.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChurnPlanConfig;
    use fsf_engines::EngineKind;
    use fsf_network::builders;

    #[test]
    fn every_engine_survives_a_seeded_plan() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 20,
                ..ChurnPlanConfig::default()
            },
        );
        for kind in EngineKind::ALL {
            let mut engine = kind.build(topo.clone(), 60, 42);
            run_plan(engine.as_mut(), &plan);
            assert!(engine.stats().adv_msgs > 0, "{kind}: nothing happened");
        }
    }

    #[test]
    fn timed_replay_in_zero_latency_matches_the_serialized_runner() {
        use crate::plan::TimedReplayConfig;
        use fsf_network::LatencyModel;
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 15,
                ..ChurnPlanConfig::default()
            },
        )
        .with_teardown();
        let timed = plan.timed(&TimedReplayConfig::drained(&topo, &LatencyModel::Zero));
        for kind in EngineKind::ALL {
            let mut serialized = kind.build(topo.clone(), 60, 42);
            run_plan(serialized.as_mut(), &plan);
            let mut scheduled = kind.build(topo.clone(), 60, 42);
            let end = run_plan_timed(scheduled.as_mut(), &timed);
            assert!(end >= timed.horizon());
            assert_eq!(scheduled.queue_depth(), 0, "{kind}: not quiescent");
            assert_eq!(
                scheduled.deliveries(),
                serialized.deliveries(),
                "{kind}: timed replay diverged"
            );
            assert_eq!(
                scheduled.stats(),
                serialized.stats(),
                "{kind}: traffic diverged"
            );
        }
    }
}
