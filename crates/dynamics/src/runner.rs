//! Replay churn plans through any engine.

use crate::plan::{ChurnAction, ChurnPlan};
use fsf_engines::Engine;

/// Apply one action to an engine (without flushing).
pub fn apply_action(engine: &mut dyn Engine, action: &ChurnAction) {
    match action {
        ChurnAction::SensorUp { node, adv } => engine.inject_sensor(*node, *adv),
        ChurnAction::SensorDown { node, sensor } => engine.retract_sensor(*node, *sensor),
        ChurnAction::Subscribe { node, sub } => engine.inject_subscription(*node, sub.clone()),
        ChurnAction::Unsubscribe { node, sub } => engine.retract_subscription(*node, *sub),
        ChurnAction::Publish { node, event } => engine.inject_event(*node, *event),
        ChurnAction::Crash { node, anchor } => {
            engine
                .crash_node(*node, *anchor)
                .expect("plan crashes are anchored on a neighbor");
        }
    }
}

/// Replay a whole plan, flushing the network to quiescence after every
/// action so all engines observe the same serialized history (the paper's
/// requirement that every approach sees identical inputs, extended to
/// churn).
pub fn run_plan(engine: &mut dyn Engine, plan: &ChurnPlan) {
    for action in &plan.actions {
        apply_action(engine, action);
        engine.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChurnPlanConfig;
    use fsf_engines::EngineKind;
    use fsf_network::builders;

    #[test]
    fn every_engine_survives_a_seeded_plan() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 20,
                ..ChurnPlanConfig::default()
            },
        );
        for kind in EngineKind::ALL {
            let mut engine = kind.build(topo.clone(), 60, 42);
            run_plan(engine.as_mut(), &plan);
            assert!(engine.stats().adv_msgs > 0, "{kind}: nothing happened");
        }
    }
}
