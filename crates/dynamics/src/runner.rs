//! Replay churn plans through any engine — serialized (flush after every
//! action) or timed (actions fire on the virtual clock while earlier
//! floods are still in flight).

use crate::plan::{ChurnAction, ChurnPlan, TimedPlan};
use fsf_engines::Engine;
use fsf_telemetry::{Recorder, TelemetryEvent, TelemetrySink};

/// Short label for an action's telemetry span.
fn action_label(action: &ChurnAction) -> &'static str {
    match action {
        ChurnAction::SensorUp { .. } => "sensor-up",
        ChurnAction::SensorDown { .. } => "sensor-down",
        ChurnAction::Subscribe { .. } => "subscribe",
        ChurnAction::Unsubscribe { .. } => "unsubscribe",
        ChurnAction::Publish { .. } => "publish",
        ChurnAction::Crash { .. } => "crash-action",
        ChurnAction::Move { .. } => "move-action",
        ChurnAction::Recover => "recover-action",
        ChurnAction::Sever { .. } => "sever-link",
        ChurnAction::Heal { .. } => "heal-link",
    }
}

/// The target node of an action, where one exists.
fn action_node(action: &ChurnAction) -> Option<u32> {
    match action {
        ChurnAction::SensorUp { node, .. }
        | ChurnAction::SensorDown { node, .. }
        | ChurnAction::Subscribe { node, .. }
        | ChurnAction::Unsubscribe { node, .. }
        | ChurnAction::Publish { node, .. }
        | ChurnAction::Crash { node, .. }
        | ChurnAction::Move { node, .. } => Some(node.0),
        // a link action has two endpoints; the engine's own span carries
        // both, so the action-level span names neither
        ChurnAction::Recover | ChurnAction::Sever { .. } | ChurnAction::Heal { .. } => None,
    }
}

/// Apply one action to an engine (without flushing).
pub fn apply_action(engine: &mut dyn Engine, action: &ChurnAction) {
    match action {
        ChurnAction::SensorUp { node, adv } => engine.inject_sensor(*node, *adv),
        ChurnAction::SensorDown { node, sensor } => engine.retract_sensor(*node, *sensor),
        ChurnAction::Subscribe { node, sub } => engine.inject_subscription(*node, sub.clone()),
        ChurnAction::Unsubscribe { node, sub } => engine.retract_subscription(*node, *sub),
        ChurnAction::Publish { node, event } => engine.inject_event(*node, *event),
        ChurnAction::Crash { node, anchor } => {
            engine
                .crash_node(*node, *anchor)
                .expect("plan crashes are anchored on a neighbor");
        }
        ChurnAction::Move { node, adv, .. } => engine.move_sensor(*node, *adv),
        ChurnAction::Recover => engine.recover(),
        ChurnAction::Sever { a, b } => {
            engine
                .sever_link(*a, *b)
                .expect("plan severs an existing edge");
        }
        ChurnAction::Heal { a, b } => {
            engine
                .heal_link(*a, *b)
                .expect("plan heals an existing edge");
        }
    }
}

/// Replay a whole plan, flushing the network to quiescence after every
/// action so all engines observe the same serialized history (the paper's
/// requirement that every approach sees identical inputs, extended to
/// churn).
pub fn run_plan(engine: &mut dyn Engine, plan: &ChurnPlan) {
    for action in &plan.actions {
        apply_action(engine, action);
        engine.flush();
    }
}

/// Replay a timed plan on the virtual clock: advance the network to each
/// action's scheduled time (delivering exactly the messages due by then —
/// **no** per-action flush), apply the action, and finally run the
/// remaining in-flight messages to quiescence. Returns the virtual time at
/// quiescence.
///
/// With a nonzero latency model this is the setting the run-to-quiescence
/// runner cannot express: a retraction injected while its own
/// advertisement flood is still in flight, operators racing event floods,
/// crashes purging in-flight messages.
pub fn run_plan_timed(engine: &mut dyn Engine, plan: &TimedPlan) -> u64 {
    for timed in &plan.actions {
        engine.run_until(timed.at);
        apply_action(engine, &timed.action);
    }
    engine.flush();
    engine.now()
}

/// [`run_plan`], recording one engine-level span per action into `sink`
/// covering the action *and* the flush to quiescence it triggers — the
/// window in which its matching, forwarding and re-splitting happen. Use
/// with an engine built by [`fsf_engines::EngineKind::build_recorded`] so
/// the spans land in the same trace as the message lifecycle.
pub fn run_plan_traced(engine: &mut dyn Engine, plan: &ChurnPlan, sink: &Recorder) {
    for action in &plan.actions {
        let start = engine.now();
        apply_action(engine, action);
        engine.flush();
        sink.record(TelemetryEvent::EngineOp {
            op: action_label(action).to_string(),
            node: action_node(action),
            start,
            end: engine.now(),
            detail: String::new(),
        });
    }
}

/// [`run_plan_timed`], recording one engine-level span per action into
/// `sink`: the span opens when the clock reaches the action's scheduled
/// time and closes after the action is applied (in-flight floods keep
/// running — the final flush gets its own `drain` span). Returns the
/// virtual time at quiescence.
pub fn run_plan_timed_traced(engine: &mut dyn Engine, plan: &TimedPlan, sink: &Recorder) -> u64 {
    for timed in &plan.actions {
        engine.run_until(timed.at);
        let start = engine.now();
        apply_action(engine, &timed.action);
        sink.record(TelemetryEvent::EngineOp {
            op: action_label(&timed.action).to_string(),
            node: action_node(&timed.action),
            start,
            end: engine.now(),
            detail: String::new(),
        });
    }
    let start = engine.now();
    engine.flush();
    sink.record(TelemetryEvent::EngineOp {
        op: "drain".to_string(),
        node: None,
        start,
        end: engine.now(),
        detail: String::new(),
    });
    engine.now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChurnPlanConfig;
    use fsf_engines::EngineKind;
    use fsf_network::builders;

    #[test]
    fn every_engine_survives_a_seeded_plan() {
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 20,
                ..ChurnPlanConfig::default()
            },
        );
        for kind in EngineKind::ALL {
            let mut engine = kind.build(topo.clone(), 60, 42);
            run_plan(engine.as_mut(), &plan);
            assert!(engine.stats().adv_msgs() > 0, "{kind}: nothing happened");
        }
    }

    #[test]
    fn timed_replay_in_zero_latency_matches_the_serialized_runner() {
        use crate::plan::TimedReplayConfig;
        use fsf_network::LatencyModel;
        let topo = builders::balanced(31, 2);
        let plan = ChurnPlan::seeded(
            &topo,
            &ChurnPlanConfig {
                churn_actions: 15,
                ..ChurnPlanConfig::default()
            },
        )
        .with_teardown();
        let timed = plan.timed(&TimedReplayConfig::drained(&topo, &LatencyModel::Zero));
        for kind in EngineKind::ALL {
            let mut serialized = kind.build(topo.clone(), 60, 42);
            run_plan(serialized.as_mut(), &plan);
            let mut scheduled = kind.build(topo.clone(), 60, 42);
            let end = run_plan_timed(scheduled.as_mut(), &timed);
            assert!(end >= timed.horizon());
            assert_eq!(scheduled.queue_depth(), 0, "{kind}: not quiescent");
            assert_eq!(
                scheduled.deliveries(),
                serialized.deliveries(),
                "{kind}: timed replay diverged"
            );
            assert_eq!(
                scheduled.stats(),
                serialized.stats(),
                "{kind}: traffic diverged"
            );
        }
    }
}
