//! Exact pairwise coverage: does one operator subsume another on its own?
//!
//! This is the filtering technique of the *operator placement* and
//! *multi-join* baselines (paper Table II: "Pair wise"), and the cheap first
//! stage of the Filter-Split-Forward set filter: reusing "wider filters for
//! the more restrictive ones, which they cover entirely" (§III-A).

use fsf_model::Operator;

/// Does `wide` cover `narrow` — i.e. does every complex event matching
/// `narrow` also match `wide`?
///
/// Exact sufficient-and-necessary conditions for operators over the same
/// dimension set with the paper's uniform-δ assumption:
///
/// * identical dimension signatures (same sensors / attribute types);
/// * same subscription kind (identified vs abstract);
/// * `wide`'s temporal correlation distance is at least `narrow`'s
///   (a larger `δt` window accepts every selection a smaller one accepts);
/// * `wide`'s spatial correlation distance is at least `narrow`'s;
/// * `wide`'s region contains `narrow`'s region;
/// * each of `wide`'s value ranges contains the corresponding range of
///   `narrow`.
///
/// Region containment uses [`fsf_model::Region::contains_region`], which is
/// exact for the shipped region shapes.
#[must_use]
pub fn covers(wide: &Operator, narrow: &Operator) -> bool {
    if wide.kind() != narrow.kind() {
        return false;
    }
    if wide.delta_t() < narrow.delta_t() {
        return false;
    }
    match (wide.delta_l(), narrow.delta_l()) {
        (None, _) => {}                  // ∞ accepts everything
        (Some(_), None) => return false, // finite cannot cover ∞
        (Some(w), Some(n)) if w < n => return false,
        _ => {}
    }
    if !wide.region().contains_region(narrow.region()) {
        return false;
    }
    if wide.arity() != narrow.arity() {
        return false;
    }
    // Same sorted dimension order on both sides.
    wide.predicates()
        .iter()
        .zip(narrow.predicates())
        .all(|(w, n)| w.key == n.key && w.range.contains_range(&n.range))
}

/// Is `op` covered by any single member of `group`?
#[must_use]
pub fn covered_by_any<'a>(op: &Operator, group: impl IntoIterator<Item = &'a Operator>) -> bool {
    group.into_iter().any(|g| covers(g, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::{
        AttrId, Operator, Point, Rect, Region, SensorId, SubId, Subscription, ValueRange,
    };

    fn ident(id: u64, ranges: &[(u32, f64, f64)], dt: u64) -> Operator {
        let s = Subscription::identified(
            SubId(id),
            ranges
                .iter()
                .map(|&(d, lo, hi)| (SensorId(d), ValueRange::new(lo, hi))),
            dt,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    fn abstr(
        id: u64,
        ranges: &[(u16, f64, f64)],
        region: Region,
        dt: u64,
        dl: Option<f64>,
    ) -> Operator {
        let s = Subscription::abstract_over(
            SubId(id),
            ranges
                .iter()
                .map(|&(a, lo, hi)| (AttrId(a), ValueRange::new(lo, hi))),
            region,
            dt,
            dl,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    #[test]
    fn wider_ranges_cover_narrower() {
        let wide = ident(1, &[(1, 0.0, 100.0), (2, 0.0, 100.0)], 30);
        let narrow = ident(2, &[(1, 10.0, 20.0), (2, 30.0, 40.0)], 30);
        assert!(covers(&wide, &narrow));
        assert!(!covers(&narrow, &wide));
        assert!(covers(&wide, &wide), "coverage is reflexive");
    }

    #[test]
    fn partial_overlap_does_not_cover() {
        let a = ident(1, &[(1, 0.0, 50.0)], 30);
        let b = ident(2, &[(1, 40.0, 60.0)], 30);
        assert!(!covers(&a, &b));
        assert!(!covers(&b, &a));
    }

    #[test]
    fn different_dims_never_cover() {
        let a = ident(1, &[(1, 0.0, 100.0), (2, 0.0, 100.0)], 30);
        let b = ident(2, &[(1, 10.0, 20.0), (3, 10.0, 20.0)], 30);
        assert!(!covers(&a, &b));
        // subset of dims does not cover either (a missing attribute is a
        // request for *nothing*, not for everything — §V-B)
        let c = ident(3, &[(1, 10.0, 20.0)], 30);
        assert!(!covers(&a, &c));
        assert!(!covers(&c, &a));
    }

    #[test]
    fn kinds_are_incomparable() {
        let i = ident(1, &[(1, 0.0, 100.0)], 30);
        let a = abstr(2, &[(0, 0.0, 100.0)], Region::All, 30, None);
        assert!(!covers(&i, &a));
        assert!(!covers(&a, &i));
    }

    #[test]
    fn delta_t_must_be_at_least_as_wide() {
        let wide = ident(1, &[(1, 0.0, 100.0)], 20);
        let narrow = ident(2, &[(1, 10.0, 20.0)], 30);
        assert!(!covers(&wide, &narrow), "smaller window cannot cover");
        let wide2 = ident(3, &[(1, 0.0, 100.0)], 40);
        assert!(covers(&wide2, &narrow));
    }

    #[test]
    fn delta_l_rules() {
        let r = Region::All;
        let inf = abstr(1, &[(0, 0.0, 100.0)], r, 30, None);
        let d10 = abstr(2, &[(0, 10.0, 20.0)], r, 30, Some(10.0));
        let d20 = abstr(3, &[(0, 10.0, 20.0)], r, 30, Some(20.0));
        assert!(covers(&inf, &d10), "∞ covers finite");
        assert!(!covers(&d10, &inf), "finite cannot cover ∞");
        assert!(covers(&d20, &d10));
        assert!(!covers(&d10, &d20));
    }

    #[test]
    fn region_containment_required() {
        let big = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)));
        let small = Region::Rect(Rect::new(Point::new(10.0, 10.0), Point::new(20.0, 20.0)));
        let wide = abstr(1, &[(0, 0.0, 100.0)], big, 30, None);
        let narrow = abstr(2, &[(0, 10.0, 20.0)], small, 30, None);
        let narrow_elsewhere = abstr(
            3,
            &[(0, 10.0, 20.0)],
            Region::Rect(Rect::new(Point::new(200.0, 0.0), Point::new(300.0, 100.0))),
            30,
            None,
        );
        assert!(covers(&wide, &narrow));
        assert!(!covers(&wide, &narrow_elsewhere));
    }

    #[test]
    fn covered_by_any_scans_group() {
        let g1 = ident(1, &[(1, 0.0, 10.0)], 30);
        let g2 = ident(2, &[(1, 50.0, 60.0)], 30);
        let inside = ident(3, &[(1, 52.0, 58.0)], 30);
        let outside = ident(4, &[(1, 20.0, 30.0)], 30);
        let group = [g1, g2];
        assert!(covered_by_any(&inside, &group));
        assert!(!covered_by_any(&outside, &group));
        assert!(!covered_by_any(&inside, &[]));
    }

    #[test]
    fn union_cover_is_not_pairwise_cover() {
        // [0,10] ∪ [10,20] covers [5,15] as a set, but neither alone does —
        // pairwise must say "not covered"
        let g1 = ident(1, &[(1, 0.0, 10.0)], 30);
        let g2 = ident(2, &[(1, 10.0, 20.0)], 30);
        let mid = ident(3, &[(1, 5.0, 15.0)], 30);
        assert!(!covered_by_any(&mid, &[g1, g2]));
    }
}
