//! The shared per-node range arrangement.
//!
//! Event matching (Algorithm 5) asks one question per incoming reading and
//! per dimension: *which stored operators constrain this dimension with a
//! value range containing the reading's value?* The baseline answer is a
//! linear scan of the per-dimension inverted index — O(operators) per
//! reading, which dies at millions of subscriptions. [`RangeIndex`] answers
//! it in O(log n + matches): per dimension, a sorted boundary array over the
//! operators' `[lo, hi]` ranges augmented with subtree-max upper bounds (a
//! static interval tree over the sort order), rebuilt lazily after control
//! -plane mutations.
//!
//! The index is an *accelerator*, not a semantics change: every query is
//! post-filtered through the same [`fsf_model::Predicate::matches`] the scan
//! uses, and candidates come back in key order — exactly the order the
//! inverted-index scan produces. [`MatchMode::LinearScan`] keeps the scan
//! alive as the differential oracle (`tests/matching_equivalence.rs`).

use fsf_model::DimKey;
use std::collections::BTreeMap;

/// How a node answers the per-dimension candidate query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Scan the per-dimension inverted index and value-check every operator
    /// — O(operators with the dim) per reading. Retained as the
    /// differential-test oracle.
    LinearScan,
    /// Stab the shared range arrangement — O(log ops + matches) per
    /// reading. The production hot path.
    #[default]
    Arrangement,
}

/// One dimension's interval set: `(lo, hi, key)` triples sorted by
/// `(lo, hi, key)`, with `max_hi[i]` = the maximum `hi` in the subtree of
/// the implicit midpoint BST rooted at `i`. Mutations mark the set dirty;
/// the first stab after a mutation re-sorts and re-augments.
#[derive(Debug, Clone)]
struct DimIntervals<K> {
    items: Vec<(f64, f64, K)>,
    max_hi: Vec<f64>,
    dirty: bool,
}

impl<K: Ord + Clone> DimIntervals<K> {
    fn new() -> Self {
        DimIntervals {
            items: Vec::new(),
            max_hi: Vec::new(),
            dirty: false,
        }
    }

    fn rebuild(&mut self) {
        self.items.sort_unstable_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        self.max_hi.clear();
        self.max_hi.resize(self.items.len(), f64::NEG_INFINITY);
        self.augment(0, self.items.len());
        self.dirty = false;
    }

    /// Fill `max_hi[mid]` for the subtree over `[a, b)`; returns its max.
    fn augment(&mut self, a: usize, b: usize) -> f64 {
        if a >= b {
            return f64::NEG_INFINITY;
        }
        let mid = a + (b - a) / 2;
        let left = self.augment(a, mid);
        let right = self.augment(mid + 1, b);
        let m = self.items[mid].1.max(left).max(right);
        self.max_hi[mid] = m;
        m
    }

    /// All keys whose interval contains `v`, in key order.
    fn stab(&mut self, v: f64) -> Vec<K> {
        if self.dirty {
            self.rebuild();
        }
        let mut out = Vec::new();
        self.stab_into(0, self.items.len(), v, &mut out);
        out.sort_unstable();
        out
    }

    fn stab_into(&self, a: usize, b: usize, v: f64, out: &mut Vec<K>) {
        if a >= b {
            return;
        }
        let mid = a + (b - a) / 2;
        if self.max_hi[mid] < v {
            return; // no interval in this subtree reaches v
        }
        let (lo, hi, ref key) = self.items[mid];
        if lo <= v {
            if v <= hi {
                out.push(key.clone());
            }
            self.stab_into(a, mid, v, out);
            self.stab_into(mid + 1, b, v, out);
        } else {
            // everything right of mid starts even later — prune it
            self.stab_into(a, mid, v, out);
        }
    }
}

/// A per-dimension stabbing index over operator value ranges, generic in
/// the stored key type (the pub/sub family indexes [`fsf_model::OperatorKey`],
/// the multi-join engine its own `MjKey`).
#[derive(Debug, Clone)]
pub struct RangeIndex<K> {
    dims: BTreeMap<DimKey, DimIntervals<K>>,
}

impl<K: Ord + Clone> Default for RangeIndex<K> {
    fn default() -> Self {
        RangeIndex {
            dims: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Clone> RangeIndex<K> {
    /// Empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `key`'s `[lo, hi]` range on `dim`.
    pub fn insert(&mut self, dim: DimKey, lo: f64, hi: f64, key: K) {
        let slot = self.dims.entry(dim).or_insert_with(DimIntervals::new);
        slot.items.push((lo, hi, key));
        slot.dirty = true;
    }

    /// Remove every entry of `key` on `dim` (retraction / unsubscribe /
    /// crash purge).
    pub fn remove(&mut self, dim: &DimKey, key: &K) {
        if let Some(slot) = self.dims.get_mut(dim) {
            slot.items.retain(|(_, _, k)| k != key);
            slot.dirty = true;
            if slot.items.is_empty() {
                self.dims.remove(dim);
            }
        }
    }

    /// Keys whose range on `dim` contains `v`, in key order. `O(log n +
    /// matches)` once the index is clean; the first query after a mutation
    /// pays one `O(n log n)` rebuild.
    pub fn stab(&mut self, dim: &DimKey, v: f64) -> Vec<K> {
        self.dims
            .get_mut(dim)
            .map(|s| s.stab(v))
            .unwrap_or_default()
    }

    /// Total registered intervals, across dimensions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dims.values().map(|s| s.items.len()).sum()
    }

    /// Is the index empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Canonical content: `(dim, lo bits, hi bits, key)`, sorted. Two
    /// indexes with equal canonical content answer every stab identically,
    /// whatever mutation history produced them — the incremental-vs-rebuilt
    /// property checks compare exactly this.
    #[must_use]
    pub fn canonical_entries(&self) -> Vec<(DimKey, u64, u64, K)>
    where
        K: std::fmt::Debug,
    {
        let mut out: Vec<(DimKey, u64, u64, K)> = self
            .dims
            .iter()
            .flat_map(|(d, s)| {
                s.items
                    .iter()
                    .map(move |(lo, hi, k)| (*d, lo.to_bits(), hi.to_bits(), k.clone()))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Content equality, ignoring sort/augmentation state.
    #[must_use]
    pub fn same_entries(&self, other: &Self) -> bool
    where
        K: std::fmt::Debug,
    {
        self.canonical_entries() == other.canonical_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::SensorId;

    fn dim(d: u32) -> DimKey {
        DimKey::Sensor(SensorId(d))
    }

    #[test]
    fn stab_finds_exactly_the_containing_intervals() {
        let mut idx: RangeIndex<u32> = RangeIndex::new();
        idx.insert(dim(1), 0.0, 10.0, 1);
        idx.insert(dim(1), 5.0, 15.0, 2);
        idx.insert(dim(1), 12.0, 20.0, 3);
        idx.insert(dim(2), 0.0, 100.0, 4); // other dim never answers
        assert_eq!(idx.stab(&dim(1), 7.0), vec![1, 2]);
        assert_eq!(idx.stab(&dim(1), 12.0), vec![2, 3]);
        assert_eq!(idx.stab(&dim(1), 30.0), Vec::<u32>::new());
        assert_eq!(idx.stab(&dim(3), 7.0), Vec::<u32>::new());
    }

    #[test]
    fn point_zero_width_and_unbounded_ranges() {
        let mut idx: RangeIndex<u32> = RangeIndex::new();
        idx.insert(dim(1), 5.0, 5.0, 1); // point range
        idx.insert(dim(1), f64::NEG_INFINITY, f64::INFINITY, 2);
        assert_eq!(idx.stab(&dim(1), 5.0), vec![1, 2]);
        assert_eq!(idx.stab(&dim(1), 5.0001), vec![2]);
    }

    #[test]
    fn remove_then_stab_matches_a_fresh_build() {
        let mut idx: RangeIndex<u32> = RangeIndex::new();
        for i in 0..50u32 {
            idx.insert(dim(1), f64::from(i), f64::from(i + 10), i);
        }
        // interleave stabs (forcing rebuilds) with removals
        assert!(!idx.stab(&dim(1), 25.0).is_empty());
        for i in (0..50u32).step_by(3) {
            idx.remove(&dim(1), &i);
        }
        let mut fresh: RangeIndex<u32> = RangeIndex::new();
        for i in 0..50u32 {
            if i % 3 != 0 {
                fresh.insert(dim(1), f64::from(i), f64::from(i + 10), i);
            }
        }
        assert!(idx.same_entries(&fresh));
        for v in 0..60 {
            let v = f64::from(v) + 0.5;
            assert_eq!(idx.stab(&dim(1), v), fresh.stab(&dim(1), v), "v={v}");
        }
    }

    #[test]
    fn stab_agrees_with_linear_scan_on_dense_overlaps() {
        // deterministic pseudo-random intervals, no external rng
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut idx: RangeIndex<u32> = RangeIndex::new();
        let mut plain: Vec<(f64, f64, u32)> = Vec::new();
        for i in 0..400u32 {
            let lo = (next() % 1000) as f64 / 10.0;
            let width = (next() % 200) as f64 / 10.0;
            idx.insert(dim(1), lo, lo + width, i);
            plain.push((lo, lo + width, i));
        }
        for probe in 0..200u64 {
            let v = (next() % 1200) as f64 / 10.0;
            let mut expected: Vec<u32> = plain
                .iter()
                .filter(|&&(lo, hi, _)| lo <= v && v <= hi)
                .map(|&(_, _, k)| k)
                .collect();
            expected.sort_unstable();
            assert_eq!(idx.stab(&dim(1), v), expected, "probe {probe} v={v}");
        }
    }
}
