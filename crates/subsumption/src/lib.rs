//! # fsf-subsumption
//!
//! Subscription subsumption machinery (paper §V-B and reference \[15\],
//! Ouksel et al., *Efficient Probabilistic Subsumption Checking for
//! Content-Based Publish/Subscribe Systems*, Middleware 2006).
//!
//! Three checkers, by increasing power:
//!
//! * [`pairwise::covers`] — exact single-operator coverage (`s ⊆ s'`), used
//!   by the *operator placement* and *multi-join* baselines;
//! * [`exact`] — an exact set-cover decision procedure over axis-aligned
//!   boxes (grid decomposition). Exponential in the dimension count, so it is
//!   used as a test oracle and for small operator groups only;
//! * [`monte_carlo`] — the probabilistic set-subsumption check with a
//!   configurable error probability, the reproduction of \[15\]. This is the
//!   *set filtering* of the Filter-Split-Forward engine (Algorithm 2). False
//!   positives ("covered" although a gap exists) are possible and translate
//!   into missed events (< 100% recall), exactly as the paper discusses in
//!   §VI-F.
//!
//! [`filter::SubscriptionFilter`] packages the three behind the policy knob
//! the engines use, and [`table::OperatorTable`] provides the
//! signature-grouped storage Algorithm 2 requires ("we compare only
//! subscriptions over the same attributes").

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arrangement;
pub mod exact;
pub mod filter;
pub mod monte_carlo;
pub mod pairwise;
pub mod shape;
pub mod table;

pub use arrangement::{MatchMode, RangeIndex};
pub use filter::{FilterPolicy, SetFilterConfig, SubscriptionFilter};
pub use shape::{CoverShape, SamplePoint};
pub use table::OperatorTable;
