//! The `filter(s, 𝒮)` procedure of Algorithm 2, behind a policy knob.
//!
//! All five evaluated approaches differ in their subscription-filtering
//! column of the paper's Table II; [`FilterPolicy`] captures the three
//! behaviours:
//!
//! * `None` — centralized / naive approaches: nothing is ever filtered;
//! * `Pairwise` — operator placement / multi-join: a subscription is dropped
//!   iff a *single* stored subscription covers it;
//! * `SetFilter` — Filter-Split-Forward: probabilistic set subsumption
//!   against the whole same-signature group.

use crate::monte_carlo;
use crate::pairwise;
use crate::shape::CoverShape;
use fsf_model::Operator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the probabilistic set filter (reproduction of \[15\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetFilterConfig {
    /// Maximum probability `ε` of missing a gap of relative volume
    /// ≥ `min_gap` (the user/application-specified error probability).
    pub error_prob: f64,
    /// Smallest relative gap volume `γ` the check is calibrated to detect.
    pub min_gap: f64,
}

impl SetFilterConfig {
    /// The defaults used by the bundled experiments: `ε = 0.4`, `γ = 0.25`
    /// (4 samples per check).
    ///
    /// The paper does not state \[15\]'s parameterisation, but its Fig. 12
    /// shows end-user recall between ~93% and 100% — i.e. the filter was
    /// run with a non-negligible error budget in exchange for cheap checks
    /// and more aggressive subsumption. These defaults land the
    /// reproduction in the same recall band; use
    /// [`SetFilterConfig::strict`] for near-exact filtering.
    #[must_use]
    pub fn paper_default() -> Self {
        SetFilterConfig {
            error_prob: 0.4,
            min_gap: 0.25,
        }
    }

    /// A conservative configuration (`ε = 0.01`, `γ = 0.01`, ≈ 459 samples):
    /// virtually no false "covered" verdicts, recall ≈ 100%.
    #[must_use]
    pub fn strict() -> Self {
        SetFilterConfig {
            error_prob: 0.01,
            min_gap: 0.01,
        }
    }

    /// Number of Monte-Carlo samples this configuration implies.
    #[must_use]
    pub fn samples(&self) -> usize {
        monte_carlo::required_samples(self.error_prob, self.min_gap)
    }
}

impl Default for SetFilterConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Which subscription-filtering technique a node runs (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FilterPolicy {
    /// No filtering at all (Centralized, Naive).
    #[default]
    None,
    /// Exact pairwise coverage (Operator placement, Multi-join).
    Pairwise,
    /// Probabilistic set subsumption (Filter-Split-Forward).
    SetFilter(SetFilterConfig),
}

/// Stateful filter: owns the RNG so repeated checks are deterministic given
/// the seed (every node seeds its filter from its node id).
#[derive(Debug)]
pub struct SubscriptionFilter {
    policy: FilterPolicy,
    rng: StdRng,
}

impl SubscriptionFilter {
    /// Create a filter with the given policy and deterministic seed.
    #[must_use]
    pub fn new(policy: FilterPolicy, seed: u64) -> Self {
        SubscriptionFilter {
            policy,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> FilterPolicy {
        self.policy
    }

    /// Algorithm 2: is the new operator `op` covered by the stored `group`?
    ///
    /// `group` must already be the same-dimension-signature slice (use
    /// [`crate::OperatorTable::group`]); this method additionally restricts
    /// members to those whose kind matches and whose correlation distances
    /// are at least as permissive (`δt' ≥ δt`, `δl' ≥ δl`), which is what
    /// makes the geometric union-cover test equivalent to complex-event
    /// subsumption.
    pub fn is_covered(&mut self, op: &Operator, group: &[&Operator]) -> bool {
        let eligible: Vec<&Operator> = group
            .iter()
            .copied()
            .filter(|m| {
                m.kind() == op.kind()
                    && m.delta_t() >= op.delta_t()
                    && match (m.delta_l(), op.delta_l()) {
                        (None, _) => true,
                        (Some(_), None) => false,
                        (Some(a), Some(b)) => a >= b,
                    }
            })
            .collect();
        if eligible.is_empty() {
            return false;
        }
        match self.policy {
            FilterPolicy::None => false,
            FilterPolicy::Pairwise => pairwise::covered_by_any(op, eligible.iter().copied()),
            FilterPolicy::SetFilter(cfg) => {
                // cheap exact pre-pass: a single covering member decides
                if pairwise::covered_by_any(op, eligible.iter().copied()) {
                    return true;
                }
                let target = CoverShape::from_operator(op);
                let members: Vec<CoverShape> = eligible
                    .iter()
                    .map(|m| CoverShape::from_operator(m))
                    .collect();
                monte_carlo::is_covered(&target, &members, cfg.samples(), &mut self.rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::{Operator, SensorId, SubId, Subscription, ValueRange};

    fn op(id: u64, ranges: &[(u32, f64, f64)], dt: u64) -> Operator {
        let s = Subscription::identified(
            SubId(id),
            ranges
                .iter()
                .map(|&(d, lo, hi)| (SensorId(d), ValueRange::new(lo, hi))),
            dt,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    #[test]
    fn none_policy_never_filters() {
        let mut f = SubscriptionFilter::new(FilterPolicy::None, 1);
        let stored = op(1, &[(1, 0.0, 100.0)], 30);
        let new = op(2, &[(1, 10.0, 20.0)], 30);
        assert!(!f.is_covered(&new, &[&stored]));
    }

    #[test]
    fn pairwise_policy_detects_single_cover_only() {
        let mut f = SubscriptionFilter::new(FilterPolicy::Pairwise, 1);
        let wide = op(1, &[(1, 0.0, 100.0)], 30);
        let inside = op(2, &[(1, 10.0, 20.0)], 30);
        assert!(f.is_covered(&inside, &[&wide]));
        // union cover is invisible to pairwise
        let left = op(3, &[(1, 0.0, 10.0)], 30);
        let right = op(4, &[(1, 10.0, 20.0)], 30);
        let mid = op(5, &[(1, 5.0, 15.0)], 30);
        assert!(!f.is_covered(&mid, &[&left, &right]));
    }

    #[test]
    fn set_filter_detects_union_cover() {
        let mut f =
            SubscriptionFilter::new(FilterPolicy::SetFilter(SetFilterConfig::paper_default()), 1);
        let left = op(3, &[(1, 0.0, 10.0)], 30);
        let right = op(4, &[(1, 10.0, 20.0)], 30);
        let mid = op(5, &[(1, 5.0, 15.0)], 30);
        assert!(f.is_covered(&mid, &[&left, &right]));
        let outside = op(6, &[(1, 15.0, 25.0)], 30);
        assert!(!f.is_covered(&outside, &[&left, &right]));
    }

    #[test]
    fn smaller_delta_t_members_are_ineligible() {
        let mut f =
            SubscriptionFilter::new(FilterPolicy::SetFilter(SetFilterConfig::paper_default()), 1);
        let tight_window = op(1, &[(1, 0.0, 100.0)], 10);
        let new = op(2, &[(1, 10.0, 20.0)], 30);
        assert!(
            !f.is_covered(&new, &[&tight_window]),
            "a δt=10 subscription cannot subsume a δt=30 one"
        );
        let same_window = op(3, &[(1, 0.0, 100.0)], 30);
        assert!(f.is_covered(&new, &[&same_window]));
    }

    #[test]
    fn empty_group_is_never_covering() {
        for policy in [
            FilterPolicy::None,
            FilterPolicy::Pairwise,
            FilterPolicy::SetFilter(SetFilterConfig::paper_default()),
        ] {
            let mut f = SubscriptionFilter::new(policy, 1);
            let new = op(2, &[(1, 10.0, 20.0)], 30);
            assert!(!f.is_covered(&new, &[]));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let left = op(3, &[(1, 0.0, 10.0)], 30);
        let right = op(4, &[(1, 10.0, 20.0)], 30);
        let mid = op(5, &[(1, 5.0, 15.0)], 30);
        let run = |seed| {
            let mut f = SubscriptionFilter::new(
                FilterPolicy::SetFilter(SetFilterConfig::paper_default()),
                seed,
            );
            (0..10)
                .map(|_| f.is_covered(&mid, &[&left, &right]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }
}
