//! Geometric view of an operator for set-cover checking.
//!
//! A complex event matching an operator corresponds to a point in the
//! operator's *match space*:
//!
//! * one coordinate per dimension — the measured value, constrained by that
//!   dimension's range;
//! * for abstract operators, one 2-D *location* per dimension — the producing
//!   sensor's position, constrained by the region `L` and (pairwise) by `δl`.
//!
//! An operator `s` is subsumed by a set `{s_i}` over the same dimension set
//! iff `s`'s match space is contained in the union of the `s_i` match spaces
//! (§IV-A's subsumption definition restated geometrically). [`CoverShape`]
//! supports uniform sampling from a match space and membership tests, which
//! is all both the exact and the Monte-Carlo checkers need.
//!
//! Note on locations: the paper folds location in as "just another
//! attribute". We sample *one location per abstract dimension* rather than a
//! single shared location — constituent events of one complex event may come
//! from different sensors at different positions, and a shared-location
//! approximation would over-report coverage.

use fsf_model::{Operator, Point, Rect, Region, SubscriptionKind, ValueRange};
use rand::Rng;

/// A sampled point of an operator's match space.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// One value per dimension, in sorted-dimension order.
    pub values: Vec<f64>,
    /// One location per dimension for abstract operators; empty for
    /// identified operators (sensor locations are fixed and play no role).
    pub locations: Vec<Point>,
}

/// An operator's match space, ready for sampling / membership tests.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverShape {
    values: Vec<ValueRange>,
    kind: SubscriptionKind,
    region: Region,
    delta_l: Option<f64>,
}

/// How many rejection-sampling attempts to spend per location before giving
/// up on a sample (regions are sampled via their bounding rectangle).
const LOCATION_REJECTION_TRIES: usize = 64;

impl CoverShape {
    /// Build the match-space shape of an operator.
    #[must_use]
    pub fn from_operator(op: &Operator) -> Self {
        CoverShape {
            values: op.predicates().iter().map(|p| p.range).collect(),
            kind: op.kind(),
            region: *op.region(),
            delta_l: op.delta_l(),
        }
    }

    /// Number of value dimensions.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The per-dimension value ranges.
    #[must_use]
    pub fn values(&self) -> &[ValueRange] {
        &self.values
    }

    /// Can this shape be sampled uniformly? Requires finite value ranges and,
    /// for spatially-constrained abstract operators, a bounded region.
    #[must_use]
    pub fn is_sampleable(&self) -> bool {
        let finite = self
            .values
            .iter()
            .all(|r| r.min().is_finite() && r.max().is_finite());
        let spatial_ok = match (self.kind, &self.region) {
            (SubscriptionKind::Identified, _) => true,
            (SubscriptionKind::Abstract, Region::All) => self.delta_l.is_none(),
            (SubscriptionKind::Abstract, _) => true,
        };
        finite && spatial_ok
    }

    /// Draw a point uniformly from the match space.
    ///
    /// Returns `None` when the shape is not sampleable or when δl-rejection
    /// sampling fails (pathologically small `δl` relative to the region).
    /// Callers treat `None` conservatively (never claim coverage).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SamplePoint> {
        if !self.is_sampleable() {
            return None;
        }
        let values = self
            .values
            .iter()
            .map(|r| {
                if r.width() == 0.0 {
                    r.min()
                } else {
                    rng.gen_range(r.min()..=r.max())
                }
            })
            .collect();

        let locations = match self.kind {
            SubscriptionKind::Identified => Vec::new(),
            SubscriptionKind::Abstract => match self.region.bounding_rect() {
                None => Vec::new(), // Region::All, δl = ∞: locations irrelevant
                Some(br) => self.sample_locations(&br, rng)?,
            },
        };
        Some(SamplePoint { values, locations })
    }

    fn sample_locations<R: Rng + ?Sized>(&self, br: &Rect, rng: &mut R) -> Option<Vec<Point>> {
        let n = self.values.len();
        let mut out: Vec<Point> = Vec::with_capacity(n);
        'outer: for i in 0..n {
            // After the first location, narrow the proposal rectangle to the
            // δl-neighbourhood of the first point — otherwise rejection
            // sampling is hopeless when δl is small relative to the region.
            // (The sampling distribution need not be uniform over the valid
            // space for correctness; it only shapes which gaps are probed.)
            let window = match (self.delta_l, out.first()) {
                (Some(dl), Some(p0)) if i > 0 => Rect::new(
                    Point::new((p0.x - dl).max(br.min.x), (p0.y - dl).max(br.min.y)),
                    Point::new((p0.x + dl).min(br.max.x), (p0.y + dl).min(br.max.y)),
                ),
                _ => *br,
            };
            for _ in 0..LOCATION_REJECTION_TRIES {
                let p = Point::new(
                    sample_coord(rng, window.min.x, window.max.x),
                    sample_coord(rng, window.min.y, window.max.y),
                );
                if !self.region.contains(&p) {
                    continue;
                }
                if let Some(dl) = self.delta_l {
                    if !out.iter().all(|q| q.distance(&p) < dl) {
                        continue;
                    }
                }
                out.push(p);
                continue 'outer;
            }
            return None;
        }
        Some(out)
    }

    /// Is the sampled point inside this shape's match space?
    ///
    /// Points sampled from a *target* shape are tested against *member*
    /// shapes; a member accepts the point iff all values fall in its ranges,
    /// all locations fall in its region, and its `δl` admits the locations.
    #[must_use]
    pub fn contains(&self, p: &SamplePoint) -> bool {
        if p.values.len() != self.values.len() {
            return false;
        }
        if !self
            .values
            .iter()
            .zip(&p.values)
            .all(|(r, v)| r.contains(*v))
        {
            return false;
        }
        if self.kind == SubscriptionKind::Abstract {
            if p.locations.is_empty() {
                // Target had no spatial component (Region::All, δl=∞): a
                // member can only cover it if it is equally unconstrained.
                if self.region != Region::All || self.delta_l.is_some() {
                    return false;
                }
            } else {
                if !p.locations.iter().all(|l| self.region.contains(l)) {
                    return false;
                }
                if let Some(dl) = self.delta_l {
                    for (i, a) in p.locations.iter().enumerate() {
                        for b in &p.locations[i + 1..] {
                            if a.distance(b) >= dl {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }
}

/// Uniform sample on `[lo, hi]`, tolerating degenerate intervals.
fn sample_coord<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::{AttrId, SensorId, SubId, Subscription};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ident_op(ranges: &[(u32, f64, f64)]) -> Operator {
        let s = Subscription::identified(
            SubId(1),
            ranges
                .iter()
                .map(|&(d, lo, hi)| (SensorId(d), ValueRange::new(lo, hi))),
            30,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    fn abstr_op(ranges: &[(u16, f64, f64)], region: Region, dl: Option<f64>) -> Operator {
        let s = Subscription::abstract_over(
            SubId(1),
            ranges
                .iter()
                .map(|&(a, lo, hi)| (AttrId(a), ValueRange::new(lo, hi))),
            region,
            30,
            dl,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    #[test]
    fn identified_samples_stay_in_ranges() {
        let shape = CoverShape::from_operator(&ident_op(&[(1, 0.0, 10.0), (2, 50.0, 60.0)]));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = shape.sample(&mut rng).unwrap();
            assert!(p.locations.is_empty());
            assert!((0.0..=10.0).contains(&p.values[0]));
            assert!((50.0..=60.0).contains(&p.values[1]));
            assert!(shape.contains(&p), "a shape contains its own samples");
        }
    }

    #[test]
    fn degenerate_range_samples_the_point() {
        let shape = CoverShape::from_operator(&ident_op(&[(1, 5.0, 5.0)]));
        let mut rng = StdRng::seed_from_u64(7);
        let p = shape.sample(&mut rng).unwrap();
        assert_eq!(p.values, vec![5.0]);
    }

    #[test]
    fn abstract_samples_have_one_location_per_dim_inside_region() {
        let region = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        let shape =
            CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0), (1, 0.0, 1.0)], region, None));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = shape.sample(&mut rng).unwrap();
            assert_eq!(p.locations.len(), 2);
            assert!(p.locations.iter().all(|l| region.contains(l)));
        }
    }

    #[test]
    fn circle_region_sampling_rejects_into_disc() {
        let region = Region::Circle {
            center: Point::new(0.0, 0.0),
            radius: 5.0,
        };
        let shape = CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], region, None));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = shape.sample(&mut rng).unwrap();
            assert!(region.contains(&p.locations[0]));
        }
    }

    #[test]
    fn delta_l_sampling_respects_pairwise_distance() {
        let region = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)));
        let shape = CoverShape::from_operator(&abstr_op(
            &[(0, 0.0, 1.0), (1, 0.0, 1.0), (2, 0.0, 1.0)],
            region,
            Some(10.0),
        ));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = shape.sample(&mut rng).unwrap();
            for (i, a) in p.locations.iter().enumerate() {
                for b in &p.locations[i + 1..] {
                    assert!(a.distance(b) < 10.0);
                }
            }
        }
    }

    #[test]
    fn unbounded_value_dims_are_not_sampleable() {
        let s = Subscription::identified(SubId(1), [(SensorId(1), ValueRange::unbounded())], 30)
            .unwrap();
        let shape = CoverShape::from_operator(&Operator::from_subscription(&s));
        assert!(!shape.is_sampleable());
        let mut rng = StdRng::seed_from_u64(7);
        assert!(shape.sample(&mut rng).is_none());
    }

    #[test]
    fn all_region_with_finite_delta_l_not_sampleable() {
        let shape = CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], Region::All, Some(5.0)));
        assert!(!shape.is_sampleable());
    }

    #[test]
    fn member_containment_checks_region_and_values() {
        let region_big = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        let region_small = Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)));
        let target = CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], region_big, None));
        let member_small =
            CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], region_small, None));
        let mut rng = StdRng::seed_from_u64(42);
        let mut rejected = 0;
        for _ in 0..200 {
            let p = target.sample(&mut rng).unwrap();
            let inside_small = region_small.contains(&p.locations[0]);
            assert_eq!(member_small.contains(&p), inside_small);
            if !inside_small {
                rejected += 1;
            }
        }
        assert!(
            rejected > 50,
            "most of the big region lies outside the small one"
        );
    }

    #[test]
    fn spatially_unconstrained_target_needs_unconstrained_member() {
        let target = CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], Region::All, None));
        let bounded_member = CoverShape::from_operator(&abstr_op(
            &[(0, 0.0, 1.0)],
            Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))),
            None,
        ));
        let free_member = CoverShape::from_operator(&abstr_op(&[(0, 0.0, 1.0)], Region::All, None));
        let mut rng = StdRng::seed_from_u64(1);
        let p = target.sample(&mut rng).unwrap();
        assert!(p.locations.is_empty());
        assert!(!bounded_member.contains(&p));
        assert!(free_member.contains(&p));
    }

    #[test]
    fn wrong_arity_point_is_rejected() {
        let shape = CoverShape::from_operator(&ident_op(&[(1, 0.0, 10.0)]));
        let p = SamplePoint {
            values: vec![1.0, 2.0],
            locations: vec![],
        };
        assert!(!shape.contains(&p));
    }
}
