//! Exact set-cover decision over axis-aligned boxes.
//!
//! Set subsumption over linear-arithmetic constraints is co-NP complete
//! (Srivastava 1992, the paper's reference \[21\]); this module implements the
//! classical grid-decomposition decision procedure, exponential in the number
//! of dimensions. It exists as (a) the ground-truth oracle for the
//! Monte-Carlo checker's tests and (b) an exact mode for small groups.
//!
//! Scope: *identified* operators (pure value boxes) and abstract operators
//! whose regions are rectangles or `All` — the region contributes two extra
//! grid dimensions. Abstract operators with circles or finite `δl` are not
//! handled here (the probabilistic checker covers them).

use fsf_model::{Operator, Region, SubscriptionKind, ValueRange};

/// Why the exact checker could not decide an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// A region shape outside the supported Rect/All fragment, or finite δl.
    Unsupported,
    /// The grid would exceed [`MAX_GRID_POINTS`] representative points.
    TooLarge,
}

/// Upper bound on representative grid points the checker will test.
pub const MAX_GRID_POINTS: usize = 4_000_000;

/// A pure hyper-rectangle in `R^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperBox {
    dims: Vec<ValueRange>,
}

impl HyperBox {
    /// Build from per-dimension ranges.
    #[must_use]
    pub fn new(dims: Vec<ValueRange>) -> Self {
        HyperBox { dims }
    }

    /// Per-dimension ranges.
    #[must_use]
    pub fn dims(&self) -> &[ValueRange] {
        &self.dims
    }

    /// Point membership (inclusive).
    #[must_use]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.dims.len() == p.len() && self.dims.iter().zip(p).all(|(r, v)| r.contains(*v))
    }

    /// Lower the operator to a hyper-box: value dims plus, for abstract
    /// operators, two region dims (x then y).
    pub fn from_operator(op: &Operator) -> Result<Self, ExactError> {
        let mut dims: Vec<ValueRange> = op.predicates().iter().map(|p| p.range).collect();
        if op.kind() == SubscriptionKind::Abstract {
            if op.delta_l().is_some() {
                return Err(ExactError::Unsupported);
            }
            match op.region() {
                Region::All => {
                    dims.push(ValueRange::unbounded());
                    dims.push(ValueRange::unbounded());
                }
                Region::Rect(r) => {
                    dims.push(ValueRange::new(r.min.x, r.max.x));
                    dims.push(ValueRange::new(r.min.y, r.max.y));
                }
                Region::Circle { .. } => return Err(ExactError::Unsupported),
            }
        }
        Ok(HyperBox { dims })
    }
}

/// Exact decision: is `target ⊆ ∪ members` (as closed boxes)?
///
/// Grid decomposition: per dimension, collect the cut coordinates that member
/// boundaries induce inside the target, then test one representative point
/// per grid cell *and* per cut plane. The target is covered iff every
/// representative is inside some member.
pub fn is_covered(target: &HyperBox, members: &[HyperBox]) -> Result<bool, ExactError> {
    let n = target.dims.len();
    if members.is_empty() {
        return Ok(false);
    }
    if members.iter().any(|m| m.dims.len() != n) {
        // Boxes over different dimension sets never participate in the same
        // group; treat as not covering.
        return Ok(false);
    }

    // Representative coordinates per dimension: cell midpoints and cuts.
    let mut reps: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut total: usize = 1;
    for d in 0..n {
        let t = &target.dims[d];
        let mut cuts: Vec<f64> = vec![t.min(), t.max()];
        for m in members {
            for c in [m.dims[d].min(), m.dims[d].max()] {
                if c > t.min() && c < t.max() {
                    cuts.push(c);
                }
            }
        }
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite coords"));
        cuts.dedup();
        let mut r: Vec<f64> = Vec::with_capacity(cuts.len() * 2);
        for w in cuts.windows(2) {
            r.push(w[0]);
            r.push(w[0] / 2.0 + w[1] / 2.0); // midpoint, overflow-safe
        }
        r.push(*cuts.last().expect("at least one cut"));
        r.dedup();
        total = total.saturating_mul(r.len());
        if total > MAX_GRID_POINTS {
            return Err(ExactError::TooLarge);
        }
        reps.push(r);
    }

    // Odometer over the representative grid.
    let mut idx = vec![0usize; n];
    let mut point = vec![0f64; n];
    loop {
        for d in 0..n {
            point[d] = reps[d][idx[d]];
        }
        if !members.iter().any(|m| m.contains_point(&point)) {
            return Ok(false);
        }
        // advance odometer
        let mut d = 0;
        loop {
            if d == n {
                return Ok(true);
            }
            idx[d] += 1;
            if idx[d] < reps[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// Convenience: exact operator-level set-subsumption for the supported
/// fragment (same dimension signature assumed, as in Algorithm 2 grouping).
pub fn operator_covered(target: &Operator, members: &[&Operator]) -> Result<bool, ExactError> {
    let t = HyperBox::from_operator(target)?;
    let ms = members
        .iter()
        .map(|m| HyperBox::from_operator(m))
        .collect::<Result<Vec<_>, _>>()?;
    is_covered(&t, &ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxn(ranges: &[(f64, f64)]) -> HyperBox {
        HyperBox::new(ranges.iter().map(|&(a, b)| ValueRange::new(a, b)).collect())
    }

    #[test]
    fn single_box_cover_1d() {
        let t = boxn(&[(2.0, 8.0)]);
        assert!(is_covered(&t, &[boxn(&[(0.0, 10.0)])]).unwrap());
        assert!(!is_covered(&t, &[boxn(&[(3.0, 10.0)])]).unwrap());
        assert!(!is_covered(&t, &[]).unwrap());
    }

    #[test]
    fn union_cover_1d() {
        let t = boxn(&[(0.0, 10.0)]);
        // two halves that touch cover the closed interval
        assert!(is_covered(&t, &[boxn(&[(0.0, 5.0)]), boxn(&[(5.0, 10.0)])]).unwrap());
        // a gap (5,6) leaks
        assert!(!is_covered(&t, &[boxn(&[(0.0, 5.0)]), boxn(&[(6.0, 10.0)])]).unwrap());
    }

    #[test]
    fn l_shaped_union_does_not_cover_square_2d() {
        let t = boxn(&[(0.0, 10.0), (0.0, 10.0)]);
        // left column and bottom row: leaves the top-right block open
        let left = boxn(&[(0.0, 5.0), (0.0, 10.0)]);
        let bottom = boxn(&[(0.0, 10.0), (0.0, 5.0)]);
        assert!(!is_covered(&t, &[left.clone(), bottom.clone()]).unwrap());
        // adding the missing quadrant closes it
        let quad = boxn(&[(5.0, 10.0), (5.0, 10.0)]);
        assert!(is_covered(&t, &[left, bottom, quad]).unwrap());
    }

    #[test]
    fn four_quadrants_cover_2d() {
        let t = boxn(&[(0.0, 2.0), (0.0, 2.0)]);
        let quads = [
            boxn(&[(0.0, 1.0), (0.0, 1.0)]),
            boxn(&[(1.0, 2.0), (0.0, 1.0)]),
            boxn(&[(0.0, 1.0), (1.0, 2.0)]),
            boxn(&[(1.0, 2.0), (1.0, 2.0)]),
        ];
        assert!(is_covered(&t, &quads).unwrap());
        assert!(!is_covered(&t, &quads[..3]).unwrap());
    }

    #[test]
    fn degenerate_target_point() {
        let t = boxn(&[(5.0, 5.0), (5.0, 5.0)]);
        assert!(is_covered(&t, &[boxn(&[(0.0, 10.0), (0.0, 10.0)])]).unwrap());
        assert!(!is_covered(&t, &[boxn(&[(6.0, 10.0), (0.0, 10.0)])]).unwrap());
    }

    #[test]
    fn table_one_example_from_the_paper() {
        // s1: 50<a<80, 10<b<30 ; s2: 20<b<40, 2<c<20 ; s3: 55<a<75, 15<b<35, 5<c<15.
        // After splitting, s3's b-filter [15,35] is covered by the *union*
        // of s1.b=[10,30] and s2.b=[20,40] — set cover, not pairwise.
        let b3 = boxn(&[(15.0, 35.0)]);
        let b1 = boxn(&[(10.0, 30.0)]);
        let b2 = boxn(&[(20.0, 40.0)]);
        assert!(is_covered(&b3, &[b1.clone(), b2.clone()]).unwrap());
        assert!(!is_covered(&b3, &[b1]).unwrap());
        assert!(!is_covered(&b3, &[b2]).unwrap());
    }

    #[test]
    fn dimension_mismatch_is_not_covered() {
        let t = boxn(&[(0.0, 1.0)]);
        let m = boxn(&[(0.0, 1.0), (0.0, 1.0)]);
        assert!(!is_covered(&t, &[m]).unwrap());
    }

    #[test]
    fn operator_level_cover_with_rect_regions() {
        use fsf_model::{AttrId, Point, Rect, SubId, Subscription};
        let mk = |id: u64, lo: f64, hi: f64, rx: f64| {
            let s = Subscription::abstract_over(
                SubId(id),
                [(AttrId(0), ValueRange::new(lo, hi))],
                Region::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(rx, 10.0))),
                30,
                None,
            )
            .unwrap();
            Operator::from_subscription(&s)
        };
        let target = mk(1, 2.0, 8.0, 5.0);
        let member_wide = mk(2, 0.0, 10.0, 10.0);
        let member_small_region = mk(3, 0.0, 10.0, 3.0);
        assert!(operator_covered(&target, &[&member_wide]).unwrap());
        assert!(!operator_covered(&target, &[&member_small_region]).unwrap());
    }

    #[test]
    fn circle_regions_are_unsupported() {
        use fsf_model::{AttrId, Point, SubId, Subscription};
        let s = Subscription::abstract_over(
            SubId(1),
            [(AttrId(0), ValueRange::new(0.0, 1.0))],
            Region::Circle {
                center: Point::new(0.0, 0.0),
                radius: 1.0,
            },
            30,
            None,
        )
        .unwrap();
        let op = Operator::from_subscription(&s);
        assert_eq!(
            HyperBox::from_operator(&op).unwrap_err(),
            ExactError::Unsupported
        );
    }

    #[test]
    fn grid_size_guard() {
        // 8 dims x many cuts exceeds the budget
        let t = HyperBox::new(vec![ValueRange::new(0.0, 100.0); 8]);
        let members: Vec<HyperBox> = (0..20)
            .map(|i| HyperBox::new(vec![ValueRange::new(i as f64, i as f64 + 50.0); 8]))
            .collect();
        assert_eq!(is_covered(&t, &members).unwrap_err(), ExactError::TooLarge);
    }
}
