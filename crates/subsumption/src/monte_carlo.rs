//! The probabilistic set-subsumption check — reproduction of \[15\].
//!
//! Contract (as this paper uses it, §V-B): decide whether a subscription is
//! subsumed by a *set* of same-signature subscriptions, with a configurable
//! probability of error. Errors are one-sided in effect: a false "covered"
//! verdict suppresses a subscription whose uncovered gap then produces
//! missed events (false-negative events at the user, §VI-F); a false
//! "uncovered" verdict merely forwards a redundant subscription.
//!
//! Mechanism: draw `n` points uniformly from the candidate's match space and
//! declare it covered iff every point lands inside some member's match
//! space. If an uncovered gap occupies at least a fraction `γ` of the
//! candidate's volume, the probability of missing it is `(1-γ)^n ≤ ε` for
//! `n = ⌈ln ε / ln(1-γ)⌉` — the error probability is configurable through
//! `ε` (and the gap resolution through `γ`), matching \[15\]'s knob. Smaller
//! `ε`/`γ` mean more samples (more processing), fewer false negatives —
//! the trade-off the paper describes.

use crate::shape::CoverShape;
use rand::Rng;

/// Number of samples needed so that a relative gap of at least `min_gap`
/// escapes detection with probability at most `error_prob`.
///
/// Both parameters must be in `(0, 1)`.
#[must_use]
pub fn required_samples(error_prob: f64, min_gap: f64) -> usize {
    assert!(
        error_prob > 0.0 && error_prob < 1.0,
        "error_prob must be in (0,1), got {error_prob}"
    );
    assert!(
        min_gap > 0.0 && min_gap < 1.0,
        "min_gap must be in (0,1), got {min_gap}"
    );
    let n = (error_prob.ln() / (1.0 - min_gap).ln()).ceil();
    (n as usize).max(1)
}

/// Monte-Carlo set-cover verdict: is `target` covered by the union of
/// `members`, judged on `samples` uniform draws?
///
/// Conservative on unsampleable targets: returns `false` (never suppresses a
/// subscription it cannot analyse). An empty member set is never covering.
pub fn is_covered<R: Rng + ?Sized>(
    target: &CoverShape,
    members: &[CoverShape],
    samples: usize,
    rng: &mut R,
) -> bool {
    if members.is_empty() {
        return false;
    }
    if !target.is_sampleable() {
        return false;
    }
    for _ in 0..samples.max(1) {
        let Some(p) = target.sample(rng) else {
            return false; // δl rejection failure — be conservative
        };
        if !members.iter().any(|m| m.contains(&p)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::{Operator, SensorId, SubId, Subscription, ValueRange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn op(id: u64, ranges: &[(u32, f64, f64)]) -> Operator {
        let s = Subscription::identified(
            SubId(id),
            ranges
                .iter()
                .map(|&(d, lo, hi)| (SensorId(d), ValueRange::new(lo, hi))),
            30,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    fn shape(ranges: &[(u32, f64, f64)]) -> CoverShape {
        CoverShape::from_operator(&op(99, ranges))
    }

    #[test]
    fn sample_count_formula() {
        // ln(0.01)/ln(0.99) ≈ 458.2
        assert_eq!(required_samples(0.01, 0.01), 459);
        assert_eq!(required_samples(0.05, 0.05), 59);
        // resolution dominates cost
        assert!(required_samples(0.01, 0.001) > required_samples(0.01, 0.01));
        assert!(required_samples(0.001, 0.01) > required_samples(0.01, 0.01));
        assert!(required_samples(0.5, 0.9) >= 1);
    }

    #[test]
    #[should_panic(expected = "error_prob")]
    fn sample_count_rejects_bad_eps() {
        let _ = required_samples(0.0, 0.1);
    }

    #[test]
    fn full_cover_is_detected() {
        let t = shape(&[(1, 2.0, 8.0), (2, 2.0, 8.0)]);
        let m = shape(&[(1, 0.0, 10.0), (2, 0.0, 10.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(is_covered(&t, &[m], 500, &mut rng));
    }

    #[test]
    fn union_cover_is_detected() {
        // the Table I b-filter: [15,35] ⊆ [10,30] ∪ [20,40]
        let t = shape(&[(1, 15.0, 35.0)]);
        let m1 = shape(&[(1, 10.0, 30.0)]);
        let m2 = shape(&[(1, 20.0, 40.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(is_covered(&t, &[m1, m2], 500, &mut rng));
    }

    #[test]
    fn large_gap_is_caught_reliably() {
        // members cover only half of the target: gap fraction 0.5 —
        // with 100 samples, miss probability is 2^-100
        let t = shape(&[(1, 0.0, 10.0)]);
        let m = shape(&[(1, 0.0, 5.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!is_covered(&t, &[m], 100, &mut rng));
    }

    #[test]
    fn tiny_gap_can_slip_through_with_few_samples() {
        // gap is 0.1% of the volume; with 10 samples the expected
        // miss probability is ~0.99 — this is exactly the configurable
        // false-positive the paper's recall experiment measures.
        let t = shape(&[(1, 0.0, 1000.0)]);
        let m = shape(&[(1, 1.0, 1000.0)]); // misses [0,1)
        let mut rng = StdRng::seed_from_u64(1);
        let verdicts: Vec<bool> = (0..20)
            .map(|_| is_covered(&t, std::slice::from_ref(&m), 10, &mut rng))
            .collect();
        assert!(
            verdicts.iter().any(|&v| v),
            "tiny gap should usually slip through"
        );
    }

    #[test]
    fn more_samples_catch_smaller_gaps() {
        // 10% gap with the sample count for γ=0.05, ε=0.01 → caught w.h.p.
        let t = shape(&[(1, 0.0, 10.0)]);
        let m = shape(&[(1, 1.0, 10.0)]);
        let n = required_samples(0.01, 0.05);
        let mut caught = 0;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            if !is_covered(&t, std::slice::from_ref(&m), n, &mut rng) {
                caught += 1;
            }
        }
        assert!(caught >= 49, "caught only {caught}/50");
    }

    #[test]
    fn empty_member_set_is_never_covering() {
        let t = shape(&[(1, 0.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!is_covered(&t, &[], 100, &mut rng));
    }

    #[test]
    fn agreement_with_exact_oracle_on_random_instances() {
        use crate::exact::{is_covered as exact_cover, HyperBox};
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(2024);
        let mut disagreements = 0;
        for _ in 0..200 {
            // random 2-D instance
            let t = {
                let lo0 = rng.gen_range(0.0..50.0);
                let lo1 = rng.gen_range(0.0..50.0);
                shape(&[(1, lo0, lo0 + 30.0), (2, lo1, lo1 + 30.0)])
            };
            let members: Vec<CoverShape> = (0..4)
                .map(|_| {
                    let lo0 = rng.gen_range(0.0..60.0);
                    let lo1 = rng.gen_range(0.0..60.0);
                    let w0 = rng.gen_range(10.0..60.0);
                    let w1 = rng.gen_range(10.0..60.0);
                    shape(&[(1, lo0, lo0 + w0), (2, lo1, lo1 + w1)])
                })
                .collect();
            let tb = HyperBox::new(t.values().to_vec());
            let mb: Vec<HyperBox> = members
                .iter()
                .map(|m| HyperBox::new(m.values().to_vec()))
                .collect();
            let truth = exact_cover(&tb, &mb).unwrap();
            let mc = is_covered(&t, &members, 2000, &mut rng);
            // MC may only err by claiming coverage where a (tiny) gap exists;
            // it must never claim a gap where full coverage holds.
            if truth && !mc {
                panic!("MC denied a true cover");
            }
            if !truth && mc {
                disagreements += 1;
            }
        }
        assert!(
            disagreements <= 4,
            "too many missed gaps: {disagreements}/200"
        );
    }
}
