//! Signature-grouped operator storage.
//!
//! Algorithm 2 compares a new subscription only against stored subscriptions
//! *over the same attribute set*; [`OperatorTable`] maintains exactly that
//! grouping. Every node keeps one table per neighbor (its `S_m`) plus one
//! for local users (`S_local`), split into covered/uncovered halves by the
//! node framework.
//!
//! Beyond the signature groups, the table maintains a per-dimension inverted
//! index so that event processing (Algorithm 5) only touches operators that
//! reference the incoming event's sensor or attribute type, and a shared
//! [`RangeIndex`] arrangement over the operators' value ranges so that the
//! per-reading candidate query costs O(log ops + matches) in
//! [`MatchMode::Arrangement`] instead of a linear scan.

use crate::arrangement::{MatchMode, RangeIndex};
use fsf_model::{DimKey, DimSignature, Event, Operator, OperatorKey};
use std::collections::{BTreeMap, BTreeSet};

/// Operators grouped by dimension signature, deduplicated by
/// [`OperatorKey`] (`(subscription, dims)` identity), with a per-dimension
/// inverted index and a shared range arrangement.
#[derive(Debug, Default, Clone)]
pub struct OperatorTable {
    by_key: BTreeMap<OperatorKey, Operator>,
    by_sig: BTreeMap<DimSignature, Vec<OperatorKey>>,
    by_dim: BTreeMap<DimKey, BTreeSet<OperatorKey>>,
    index: RangeIndex<OperatorKey>,
}

impl OperatorTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an operator. Returns `false` (and stores nothing) if an
    /// operator with the same `(subscription, dims)` identity is already
    /// present — re-deliveries along the unique tree path are idempotent.
    pub fn insert(&mut self, op: Operator) -> bool {
        let key = op.key();
        if self.by_key.contains_key(&key) {
            return false;
        }
        self.by_sig
            .entry(op.signature())
            .or_default()
            .push(key.clone());
        for d in op.dims() {
            self.by_dim.entry(d).or_default().insert(key.clone());
            if let Some(p) = op.predicate_for(&d) {
                self.index
                    .insert(d, p.range.min(), p.range.max(), key.clone());
            }
        }
        self.by_key.insert(key, op);
        true
    }

    /// The stored group sharing `sig` (possibly empty), in insertion order.
    #[must_use]
    pub fn group(&self, sig: &DimSignature) -> Vec<&Operator> {
        self.by_sig
            .get(sig)
            .map(|keys| keys.iter().map(|k| &self.by_key[k]).collect())
            .unwrap_or_default()
    }

    /// Operators that constrain dimension `dim` — the candidates that an
    /// event of that sensor/attribute could extend.
    pub fn ops_with_dim(&self, dim: &DimKey) -> impl Iterator<Item = &Operator> {
        self.by_dim
            .get(dim)
            .into_iter()
            .flat_map(|keys| keys.iter().map(|k| &self.by_key[k]))
    }

    /// Look up an operator by identity.
    #[must_use]
    pub fn get(&self, key: &OperatorKey) -> Option<&Operator> {
        self.by_key.get(key)
    }

    /// Remove an operator by identity, returning it if present. Supports
    /// explicit unsubscription ("subscriptions are expected to be valid
    /// until explicitly removed", §IV-B).
    pub fn remove(&mut self, key: &OperatorKey) -> Option<Operator> {
        let op = self.by_key.remove(key)?;
        if let Some(keys) = self.by_sig.get_mut(&op.signature()) {
            keys.retain(|k| k != key);
            if keys.is_empty() {
                self.by_sig.remove(&op.signature());
            }
        }
        for d in op.dims() {
            if let Some(set) = self.by_dim.get_mut(&d) {
                set.remove(key);
                if set.is_empty() {
                    self.by_dim.remove(&d);
                }
            }
            self.index.remove(&d, key);
        }
        Some(op)
    }

    /// Candidate operators for `event` under `dim` — those whose predicate
    /// on `dim` matches the event — cloned, in key order.
    ///
    /// Both modes answer the identical set in the identical order (the
    /// differential battery in `tests/matching_equivalence.rs` holds them to
    /// that): [`MatchMode::LinearScan`] walks the inverted index and
    /// value-checks every operator; [`MatchMode::Arrangement`] stabs the
    /// range index (`&mut` because the first stab after a control-plane
    /// mutation rebuilds lazily) and post-filters the survivors through the
    /// same [`fsf_model::Predicate::matches`] check, so region and
    /// sensor/attribute constraints are enforced identically.
    pub fn candidates_for(
        &mut self,
        mode: MatchMode,
        dim: &DimKey,
        event: &Event,
    ) -> Vec<Operator> {
        match mode {
            MatchMode::LinearScan => self
                .ops_with_dim(dim)
                .filter(|op| {
                    op.predicate_for(dim)
                        .is_some_and(|p| p.matches(event, op.region()))
                })
                .cloned()
                .collect(),
            MatchMode::Arrangement => {
                let keys = self.index.stab(dim, event.value);
                keys.into_iter()
                    .filter_map(|k| self.by_key.get(&k))
                    .filter(|op| {
                        op.predicate_for(dim)
                            .is_some_and(|p| p.matches(event, op.region()))
                    })
                    .cloned()
                    .collect()
            }
        }
    }

    /// Does the incrementally-maintained arrangement equal one rebuilt from
    /// scratch over the stored operators? Used by the rebuild property tests
    /// (retraction, mobility supersession, crash purge).
    #[must_use]
    pub fn arrangement_consistent(&self) -> bool {
        let mut fresh: RangeIndex<OperatorKey> = RangeIndex::new();
        for (key, op) in &self.by_key {
            for d in op.dims() {
                if let Some(p) = op.predicate_for(&d) {
                    fresh.insert(d, p.range.min(), p.range.max(), key.clone());
                }
            }
        }
        self.index.same_entries(&fresh)
    }

    /// All operators originating from one subscription (a user subscription
    /// and/or its projections), by key order.
    #[must_use]
    pub fn keys_of_sub(&self, sub: fsf_model::SubId) -> Vec<OperatorKey> {
        self.by_key
            .keys()
            .filter(|k| k.sub == sub)
            .cloned()
            .collect()
    }

    /// Has this exact operator identity been stored?
    #[must_use]
    pub fn contains(&self, key: &OperatorKey) -> bool {
        self.by_key.contains_key(key)
    }

    /// All stored operators in key order — deterministic.
    pub fn iter(&self) -> impl Iterator<Item = &Operator> {
        self.by_key.values()
    }

    /// Number of stored operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of distinct dimension signatures.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.by_sig.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsf_model::{SensorId, SubId, Subscription, ValueRange};

    fn op(id: u64, sensors: &[u32]) -> Operator {
        let s = Subscription::identified(
            SubId(id),
            sensors
                .iter()
                .map(|&d| (SensorId(d), ValueRange::new(0.0, 10.0))),
            30,
        )
        .unwrap();
        Operator::from_subscription(&s)
    }

    #[test]
    fn groups_by_signature() {
        let mut t = OperatorTable::new();
        assert!(t.insert(op(1, &[1, 2])));
        assert!(t.insert(op(2, &[1, 2])));
        assert!(t.insert(op(3, &[1, 3])));
        assert_eq!(t.len(), 3);
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.group(&op(9, &[1, 2]).signature()).len(), 2);
        assert_eq!(t.group(&op(9, &[1, 3]).signature()).len(), 1);
        assert_eq!(t.group(&op(9, &[7]).signature()).len(), 0);
    }

    #[test]
    fn duplicate_identity_is_rejected() {
        let mut t = OperatorTable::new();
        assert!(t.insert(op(1, &[1, 2])));
        assert!(!t.insert(op(1, &[1, 2])), "same (sub, dims) identity");
        assert!(
            t.insert(op(1, &[1])),
            "same sub, different projection is new"
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dim_index_finds_referencing_operators() {
        use fsf_model::DimKey;
        let mut t = OperatorTable::new();
        t.insert(op(1, &[1, 2]));
        t.insert(op(2, &[2, 3]));
        t.insert(op(3, &[4]));
        let d2: Vec<u64> = t
            .ops_with_dim(&DimKey::Sensor(SensorId(2)))
            .map(|o| o.sub().0)
            .collect();
        assert_eq!(d2, vec![1, 2]);
        let d4: Vec<u64> = t
            .ops_with_dim(&DimKey::Sensor(SensorId(4)))
            .map(|o| o.sub().0)
            .collect();
        assert_eq!(d4, vec![3]);
        assert_eq!(t.ops_with_dim(&DimKey::Sensor(SensorId(9))).count(), 0);
    }

    #[test]
    fn get_and_contains_track_keys() {
        let mut t = OperatorTable::new();
        let o = op(1, &[1, 2]);
        assert!(!t.contains(&o.key()));
        assert!(t.get(&o.key()).is_none());
        t.insert(o.clone());
        assert!(t.contains(&o.key()));
        assert_eq!(t.get(&o.key()).unwrap().sub(), SubId(1));
        assert!(!t.is_empty());
    }

    #[test]
    fn remove_cleans_all_indexes() {
        use fsf_model::DimKey;
        let mut t = OperatorTable::new();
        let o1 = op(1, &[1, 2]);
        let o2 = op(2, &[1, 2]);
        t.insert(o1.clone());
        t.insert(o2.clone());
        assert_eq!(t.remove(&o1.key()).unwrap().sub(), SubId(1));
        assert!(t.remove(&o1.key()).is_none(), "second removal is a no-op");
        assert_eq!(t.len(), 1);
        assert_eq!(t.group(&o2.signature()).len(), 1);
        let hits: Vec<u64> = t
            .ops_with_dim(&DimKey::Sensor(SensorId(1)))
            .map(|o| o.sub().0)
            .collect();
        assert_eq!(hits, vec![2]);
        // removing the last member clears the signature group entirely
        t.remove(&o2.key());
        assert!(t.is_empty());
        assert_eq!(t.group_count(), 0);
        assert_eq!(t.ops_with_dim(&DimKey::Sensor(SensorId(1))).count(), 0);
    }

    #[test]
    fn keys_of_sub_finds_all_projections() {
        let mut t = OperatorTable::new();
        t.insert(op(1, &[1, 2]));
        t.insert(op(1, &[1]));
        t.insert(op(2, &[1]));
        assert_eq!(t.keys_of_sub(SubId(1)).len(), 2);
        assert_eq!(t.keys_of_sub(SubId(2)).len(), 1);
        assert!(t.keys_of_sub(SubId(9)).is_empty());
    }

    #[test]
    fn candidates_agree_across_modes_and_index_stays_consistent() {
        use fsf_model::{AttrId, DimKey, Event, EventId, Point, Timestamp};
        let mut t = OperatorTable::new();
        for i in 0..40u64 {
            let lo = (i % 10) as f64;
            let s = Subscription::identified(
                SubId(i),
                [(SensorId(1), ValueRange::new(lo, lo + 3.0))],
                30,
            )
            .unwrap();
            t.insert(Operator::from_subscription(&s));
        }
        let dim = DimKey::Sensor(SensorId(1));
        for v in 0..15 {
            let e = Event {
                id: EventId(1000 + v),
                sensor: SensorId(1),
                attr: AttrId(1),
                location: Point { x: 0.0, y: 0.0 },
                value: v as f64 + 0.5,
                timestamp: Timestamp(0),
            };
            let scan: Vec<OperatorKey> = t
                .candidates_for(crate::MatchMode::LinearScan, &dim, &e)
                .iter()
                .map(Operator::key)
                .collect();
            let arr: Vec<OperatorKey> = t
                .candidates_for(crate::MatchMode::Arrangement, &dim, &e)
                .iter()
                .map(Operator::key)
                .collect();
            assert_eq!(scan, arr, "v={v}");
        }
        assert!(t.arrangement_consistent());
        for i in (0..40u64).step_by(2) {
            for k in t.keys_of_sub(SubId(i)) {
                t.remove(&k);
            }
        }
        assert!(t.arrangement_consistent(), "after removals");
    }

    #[test]
    fn iteration_is_deterministic_key_order() {
        let mut t = OperatorTable::new();
        t.insert(op(3, &[5]));
        t.insert(op(1, &[1, 2]));
        t.insert(op(2, &[5]));
        let a: Vec<u64> = t.iter().map(|o| o.sub().0).collect();
        let b: Vec<u64> = t.iter().map(|o| o.sub().0).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
